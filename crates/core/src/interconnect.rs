//! Interconnect accounting for a distributed farm.
//!
//! When the farm is split across storage nodes, a display routed to home
//! node `h` may stripe over physical disks owned by *other* nodes. Each
//! such remote fragment must cross the interconnect during the interval
//! it is read — so remote reads charge per-interval link capacity the
//! same way reconstruction reads already charge disk intervals.
//!
//! The model is a star: every node hangs off one switch by a full-duplex
//! link. A remote fragment read in interval `t` consumes one fragment of
//! capacity on the *home* node's ingress link at `t` and one fragment of
//! the shared switch fabric at `t`. Capacities are in fragments per
//! interval; `None` means infinite (the N=1 equivalence configuration).
//!
//! [`InterconnectLedger`] is the bookkeeper. Admission uses the
//! two-phase [`InterconnectLedger::try_book`] — check every interval of
//! the proposed spans, then apply — so a display is either fully booked
//! or rejected before the disk scheduler commits. Rescue and coalesce
//! re-plans use [`InterconnectLedger::force_book`]: a mid-flight plan
//! change may not fail, so it books unconditionally (transient
//! over-subscription is accepted and visible in the stats, mirroring how
//! rescue already overbooks disk bandwidth rather than dropping).

use ss_types::NodeId;
use std::collections::HashMap;

/// Per-interval bookings of interconnect capacity for an N-node farm.
#[derive(Debug, Clone)]
pub struct InterconnectLedger {
    /// Per-node ingress link load: `interval -> fragments` crossing into
    /// the node during that interval.
    link: Vec<HashMap<u64, u64>>,
    /// Shared switch-fabric load: `interval -> fragments` switched.
    switch: HashMap<u64, u64>,
    /// Per-link capacity in fragments per interval (`None` = infinite).
    link_capacity: Option<u64>,
    /// Switch-fabric capacity in fragments per interval (`None` = infinite).
    switch_capacity: Option<u64>,
    /// Σ fragments × intervals booked across all links, for the run report.
    remote_fragment_intervals: u64,
    /// Highest single-link single-interval load ever booked.
    peak_link_fragments: u64,
    /// Admissions refused because a link or the switch was full.
    rejections: u64,
}

impl InterconnectLedger {
    /// An empty ledger for `nodes` nodes with the given capacities.
    pub fn new(nodes: u32, link_capacity: Option<u64>, switch_capacity: Option<u64>) -> Self {
        InterconnectLedger {
            link: vec![HashMap::new(); nodes as usize],
            switch: HashMap::new(),
            link_capacity,
            switch_capacity,
            remote_fragment_intervals: 0,
            peak_link_fragments: 0,
            rejections: 0,
        }
    }

    /// Whether booking `spans` — `(interval, fragments)` pairs, one entry
    /// per interval — onto `node`'s link would stay within both the link
    /// and switch capacities.
    fn fits(&self, node: NodeId, spans: &[(u64, u64)]) -> bool {
        for &(interval, frags) in spans {
            if frags == 0 {
                continue;
            }
            if let Some(cap) = self.link_capacity {
                let used = self.link[node.index()].get(&interval).copied().unwrap_or(0);
                if used + frags > cap {
                    return false;
                }
            }
            if let Some(cap) = self.switch_capacity {
                let used = self.switch.get(&interval).copied().unwrap_or(0);
                if used + frags > cap {
                    return false;
                }
            }
        }
        true
    }

    /// Unconditionally applies `spans` to `node`'s link and the switch.
    fn apply(&mut self, node: NodeId, spans: &[(u64, u64)]) {
        for &(interval, frags) in spans {
            if frags == 0 {
                continue;
            }
            let cell = self.link[node.index()].entry(interval).or_insert(0);
            *cell += frags;
            self.peak_link_fragments = self.peak_link_fragments.max(*cell);
            *self.switch.entry(interval).or_insert(0) += frags;
            self.remote_fragment_intervals += frags;
        }
    }

    /// Two-phase booking for admission: books `spans` onto `node`'s link
    /// iff every interval fits under both capacities. Returns whether the
    /// booking was applied; a refusal is counted in
    /// [`InterconnectLedger::rejections`].
    pub fn try_book(&mut self, node: NodeId, spans: &[(u64, u64)]) -> bool {
        if !self.fits(node, spans) {
            self.rejections += 1;
            return false;
        }
        self.apply(node, spans);
        true
    }

    /// Unconditional booking for rescue/coalesce re-plans: a mid-flight
    /// plan change books its new remote intervals even past capacity
    /// (transient over-subscription, never a deficit).
    pub fn force_book(&mut self, node: NodeId, spans: &[(u64, u64)]) {
        self.apply(node, spans);
    }

    /// Fragments booked onto `node`'s link during `interval`.
    pub fn booked(&self, node: NodeId, interval: u64) -> u64 {
        self.link[node.index()].get(&interval).copied().unwrap_or(0)
    }

    /// Drops bookings for intervals before `horizon` — they can never be
    /// consulted again, so long runs stay bounded.
    pub fn retire(&mut self, horizon: u64) {
        for m in &mut self.link {
            m.retain(|&t, _| t >= horizon);
        }
        self.switch.retain(|&t, _| t >= horizon);
    }

    /// Σ fragments × intervals booked across all links over the run.
    pub fn remote_fragment_intervals(&self) -> u64 {
        self.remote_fragment_intervals
    }

    /// Highest single-link single-interval load ever booked.
    pub fn peak_link_fragments(&self) -> u64 {
        self.peak_link_fragments
    }

    /// Admissions refused for lack of link or switch capacity.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_ledger_books_everything() {
        let mut l = InterconnectLedger::new(2, None, None);
        assert!(l.try_book(NodeId(0), &[(5, 100), (6, 100)]));
        assert_eq!(l.booked(NodeId(0), 5), 100);
        assert_eq!(l.booked(NodeId(1), 5), 0);
        assert_eq!(l.remote_fragment_intervals(), 200);
        assert_eq!(l.peak_link_fragments(), 100);
        assert_eq!(l.rejections(), 0);
    }

    #[test]
    fn link_capacity_rejects_atomically() {
        let mut l = InterconnectLedger::new(2, Some(3), None);
        assert!(l.try_book(NodeId(0), &[(5, 2)]));
        // Interval 6 alone would fit, but interval 5 would overflow: the
        // whole booking is refused and nothing is applied.
        assert!(!l.try_book(NodeId(0), &[(5, 2), (6, 1)]));
        assert_eq!(l.booked(NodeId(0), 5), 2);
        assert_eq!(l.booked(NodeId(0), 6), 0);
        assert_eq!(l.rejections(), 1);
        // The other node's link is independent.
        assert!(l.try_book(NodeId(1), &[(5, 3)]));
    }

    #[test]
    fn switch_capacity_is_shared_across_links() {
        let mut l = InterconnectLedger::new(3, None, Some(4));
        assert!(l.try_book(NodeId(0), &[(9, 3)]));
        assert!(!l.try_book(NodeId(1), &[(9, 2)]), "switch has 1 left");
        assert!(l.try_book(NodeId(2), &[(9, 1)]));
    }

    #[test]
    fn force_book_overrides_capacity() {
        let mut l = InterconnectLedger::new(1, Some(1), Some(1));
        l.force_book(NodeId(0), &[(3, 10)]);
        assert_eq!(l.booked(NodeId(0), 3), 10);
        assert_eq!(l.rejections(), 0);
        // Retirement drops old intervals.
        l.retire(4);
        assert_eq!(l.booked(NodeId(0), 3), 0);
    }
}
