//! Executable transcriptions of the paper's two delivery algorithms
//! (§3.2.1).
//!
//! Each *virtual disk* serving a display runs one process. Per time
//! interval the process may **initiate a read** (fragment from disk into a
//! buffer) and/or **initiate an output** (a buffered or direct fragment to
//! the network). The paper gives:
//!
//! * **Algorithm 1** (`simple_combined_algorithm`) — time-fragmented
//!   delivery *without* coalescing: fragment `i` is buffered for
//!   `w_offset = z_i − z_0 − i` intervals before delivery, so all fragments
//!   of a subobject leave in the same interval even though they were read
//!   in different ones.
//! * **Algorithm 2** (`write_thread`) — the delivery half of **dynamic
//!   coalescing**: when intervening disks free up, a virtual disk is
//!   reassigned a new fragment number `i'`; it first drains its backlog of
//!   buffered fragments, then observes a quiet period of
//!   `skip_write = z_i' − z_i − i' + i` intervals, then resumes normal
//!   delivery under the new index.
//!
//! The integration test for Figure 6 replays the paper's 8-disk example
//! step by step against these state machines.

use serde::{Deserialize, Serialize};

/// One interval's actions for a virtual-disk process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IntervalActions {
    /// `initiate_read(X_{sub.frag})`: fragment read from disk this
    /// interval.
    pub read: Option<FragmentRef>,
    /// `initiate_output(X_{sub.frag})`: fragment delivered to the network
    /// this interval.
    pub output: Option<FragmentRef>,
}

/// A `(subobject, fragment)` pair within one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FragmentRef {
    /// Subobject (stripe) index.
    pub sub: u32,
    /// Fragment index within the subobject.
    pub frag: u32,
}

impl FragmentRef {
    /// Convenience constructor.
    pub fn new(sub: u32, frag: u32) -> Self {
        FragmentRef { sub, frag }
    }
}

/// Algorithm 1: `simple_combined_algorithm(X, n, p, i)` — one virtual
/// disk's combined read/output schedule with a fixed buffering offset and
/// no coalescing.
///
/// The process runs for `n + w_offset` local intervals: it reads
/// `X_{t,i}` while `t < n` and outputs `X_{t−w_offset, i}` once
/// `t ≥ w_offset`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimpleCombined {
    n: u32,
    frag: u32,
    w_offset: u32,
    t: u32,
    buffered: u32,
}

impl SimpleCombined {
    /// Creates the process for fragment index `frag` of an object with `n`
    /// subobjects, buffering each fragment `w_offset` intervals
    /// (`w_offset = z_i − z_0 − i`, zero for a contiguous display).
    pub fn new(n: u32, frag: u32, w_offset: u32) -> Self {
        SimpleCombined {
            n,
            frag,
            w_offset,
            t: 0,
            buffered: 0,
        }
    }

    /// Number of fragments currently held in buffers.
    pub fn buffered(&self) -> u32 {
        self.buffered
    }

    /// True when the process has delivered everything.
    pub fn is_done(&self) -> bool {
        self.t >= self.n + self.w_offset
    }

    /// Executes one local time interval (one iteration of lines 4–7),
    /// returning the actions taken. Returns `None` once complete.
    pub fn tick(&mut self) -> Option<IntervalActions> {
        if self.is_done() {
            return None;
        }
        let mut act = IntervalActions::default();
        if self.t < self.n {
            act.read = Some(FragmentRef::new(self.t, self.frag));
            self.buffered += 1;
        }
        if self.t >= self.w_offset {
            act.output = Some(FragmentRef::new(self.t - self.w_offset, self.frag));
            self.buffered -= 1;
        }
        self.t += 1;
        Some(act)
    }
}

/// A coalesce order for Algorithm 2: "you are now fragment `new_frag`,
/// served by virtual disk `z_new` (was `z_old`)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalesceRequest {
    /// The new fragment index `i'`.
    pub new_frag: u32,
    /// `z_{i'} − z_i − i' + i`, the paper's `skip_write` (length of the
    /// quiet period after the backlog drains). Supplied by the scheduler,
    /// which knows the virtual-disk indices.
    pub skip_write: u32,
}

/// Algorithm 2: `write_thread(X, n, p, i)` — the delivery half of a
/// virtual disk supporting dynamic coalescing.
///
/// States: normal delivery → (coalesce request) → backlog drain
/// (`w_coalesce`) → quiet period (`w_coalesce2`) → normal delivery under
/// the new fragment index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WriteThread {
    n: u32,
    frag: u32,
    w_offset: u32,
    r_offset: i64,
    t: u32,
    backlog: u32,
    skip_write: u32,
    w_coalesce: bool,
    w_coalesce2: bool,
    pending: Option<CoalesceRequest>,
    active: Option<CoalesceRequest>,
}

impl WriteThread {
    /// Creates the delivery thread for fragment `frag` with buffering
    /// offset `w_offset`.
    pub fn new(n: u32, frag: u32, w_offset: u32) -> Self {
        WriteThread {
            n,
            frag,
            w_offset,
            r_offset: 0,
            t: 0,
            backlog: 0,
            skip_write: 0,
            w_coalesce: false,
            w_coalesce2: false,
            pending: None,
            active: None,
        }
    }

    /// The fragment index this thread currently delivers.
    pub fn frag(&self) -> u32 {
        self.frag
    }

    /// True while a coalesce (backlog drain or quiet period) is in
    /// progress.
    pub fn coalescing(&self) -> bool {
        self.w_coalesce || self.w_coalesce2
    }

    /// Submits a coalesce request. Per the paper, "a new coalesce request
    /// can only arrive after a previous coalescing has completed"; a
    /// request during an active coalesce is rejected.
    pub fn request_coalesce(&mut self, req: CoalesceRequest) -> ss_types::Result<()> {
        if self.coalescing() || self.pending.is_some() || self.active.is_some() {
            return Err(ss_types::Error::InvalidState {
                reason: "coalesce already in progress".into(),
            });
        }
        self.pending = Some(req);
        Ok(())
    }

    /// True when the thread has delivered everything.
    pub fn is_done(&self) -> bool {
        self.t >= self.n + self.w_offset
    }

    /// Executes one local interval (one iteration of lines 5–24),
    /// returning the fragment output this interval, if any.
    pub fn tick(&mut self) -> Option<FragmentRef> {
        if self.is_done() {
            return None;
        }
        // Lines 6–11: poll coalesce_request(). The paper's algorithm
        // assumes steady-state delivery; a request arriving during the
        // initial fill (t < w_offset, nothing delivered yet) is held until
        // the fill completes.
        if self.t >= self.w_offset {
            self.poll_coalesce();
        }
        self.step_output()
    }

    fn poll_coalesce(&mut self) {
        if let Some(req) = self.pending.take() {
            self.skip_write = req.skip_write;
            // backlog = w_offset − r_offset (buffered fragments to drain).
            self.backlog =
                u32::try_from(i64::from(self.w_offset) - self.r_offset).expect("negative backlog");
            self.r_offset += i64::from(req.new_frag) - i64::from(self.frag);
            if self.backlog == 0 {
                // Nothing buffered (the paper's algorithm assumes backlog
                // ≥ 1; an empty backlog jumps straight to the quiet phase).
                self.frag = req.new_frag;
                self.w_coalesce2 = self.skip_write > 0;
            } else {
                self.w_coalesce = true;
                // Park the new index; it takes effect when the backlog is
                // drained (line 17 `i = i'`).
                self.active = Some(req);
            }
        }
    }

    fn step_output(&mut self) -> Option<FragmentRef> {
        let mut out = None;
        if self.w_coalesce {
            // Lines 12–19: drain one buffered fragment.
            self.backlog -= 1;
            out = Some(FragmentRef::new(self.t - self.w_offset, self.frag));
            if self.backlog == 0 {
                self.w_coalesce = false;
                let req = self.active.take().expect("active coalesce");
                self.frag = req.new_frag; // line 17
                self.w_coalesce2 = self.skip_write > 0;
            }
        } else if self.w_coalesce2 {
            // Lines 20–22: quiet period.
            self.skip_write -= 1;
            if self.skip_write == 0 {
                self.w_coalesce2 = false;
            }
        } else if self.t >= self.w_offset {
            // Line 23: normal operation.
            out = Some(FragmentRef::new(self.t - self.w_offset, self.frag));
        }
        self.t += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_combined_without_buffering_streams_directly() {
        // Contiguous display: w_offset = 0 ⇒ read and output the same
        // subobject each interval.
        let mut p = SimpleCombined::new(3, 1, 0);
        let acts: Vec<IntervalActions> = std::iter::from_fn(|| p.tick()).collect();
        assert_eq!(acts.len(), 3);
        for (t, a) in acts.iter().enumerate() {
            assert_eq!(a.read, Some(FragmentRef::new(t as u32, 1)));
            assert_eq!(a.output, Some(FragmentRef::new(t as u32, 1)));
        }
        assert!(p.is_done());
    }

    #[test]
    fn simple_combined_buffers_then_drains() {
        // w_offset = 2: reads lead outputs by two intervals; the tail two
        // intervals only output.
        let mut p = SimpleCombined::new(4, 0, 2);
        let acts: Vec<IntervalActions> = std::iter::from_fn(|| p.tick()).collect();
        assert_eq!(acts.len(), 6);
        // Interval 0,1: read only.
        assert_eq!(acts[0].read, Some(FragmentRef::new(0, 0)));
        assert_eq!(acts[0].output, None);
        assert_eq!(acts[1].output, None);
        // Interval 2: read X2, output X0.
        assert_eq!(acts[2].read, Some(FragmentRef::new(2, 0)));
        assert_eq!(acts[2].output, Some(FragmentRef::new(0, 0)));
        // Interval 4,5: output only.
        assert_eq!(acts[4].read, None);
        assert_eq!(acts[4].output, Some(FragmentRef::new(2, 0)));
        assert_eq!(acts[5].output, Some(FragmentRef::new(3, 0)));
    }

    #[test]
    fn simple_combined_buffer_occupancy_is_bounded_by_w_offset() {
        let mut p = SimpleCombined::new(10, 0, 3);
        let mut max_buf = 0;
        while p.tick().is_some() {
            max_buf = max_buf.max(p.buffered());
        }
        assert_eq!(max_buf, 3);
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn every_fragment_is_output_exactly_once_in_order() {
        for w in [0u32, 1, 2, 5] {
            let mut p = SimpleCombined::new(20, 2, w);
            let outs: Vec<FragmentRef> = std::iter::from_fn(|| p.tick())
                .filter_map(|a| a.output)
                .collect();
            assert_eq!(outs.len(), 20, "w_offset={w}");
            for (i, o) in outs.iter().enumerate() {
                assert_eq!(*o, FragmentRef::new(i as u32, 2));
            }
        }
    }

    #[test]
    fn write_thread_without_coalesce_matches_simple() {
        let mut wt = WriteThread::new(5, 1, 2);
        let outs: Vec<Option<FragmentRef>> =
            std::iter::from_fn(|| if wt.is_done() { None } else { Some(wt.tick()) }).collect();
        assert_eq!(outs.len(), 7);
        assert_eq!(outs[0], None);
        assert_eq!(outs[1], None);
        for (t, out) in outs.iter().enumerate().take(7).skip(2) {
            assert_eq!(*out, Some(FragmentRef::new(t as u32 - 2, 1)));
        }
    }

    #[test]
    fn write_thread_coalesce_drains_backlog_then_goes_quiet() {
        // Fragment 1 buffered w_offset = 2 intervals. At local t = 4 a
        // coalesce arrives: same fragment index, new (closer) virtual disk
        // with skip_write = 2.
        let mut wt = WriteThread::new(10, 1, 2);
        let mut outputs = Vec::new();
        for t in 0..14u32 {
            if t == 4 {
                wt.request_coalesce(CoalesceRequest {
                    new_frag: 1,
                    skip_write: 2,
                })
                .unwrap();
            }
            if wt.is_done() {
                break;
            }
            outputs.push((t, wt.tick()));
        }
        // t=0,1: nothing (filling); t=2,3: X0,X1; t=4,5: backlog X2,X3;
        // t=6,7: quiet; t=8..: resume X6,X7,... under r_offset shift —
        // the read thread skipped ahead, so delivery continues seamlessly
        // from the coalesced position.
        assert_eq!(outputs[2].1, Some(FragmentRef::new(0, 1)));
        assert_eq!(outputs[4].1, Some(FragmentRef::new(2, 1)));
        assert_eq!(outputs[5].1, Some(FragmentRef::new(3, 1)));
        assert!(wt.coalescing() || outputs[6].1.is_none());
        assert_eq!(outputs[6].1, None);
        assert_eq!(outputs[7].1, None);
        assert_eq!(outputs[8].1, Some(FragmentRef::new(6, 1)));
    }

    #[test]
    fn write_thread_rejects_overlapping_coalesce() {
        let mut wt = WriteThread::new(10, 0, 3);
        for _ in 0..4 {
            wt.tick();
        }
        wt.request_coalesce(CoalesceRequest {
            new_frag: 0,
            skip_write: 2,
        })
        .unwrap();
        wt.tick(); // starts draining
        assert!(wt.coalescing());
        let err = wt.request_coalesce(CoalesceRequest {
            new_frag: 0,
            skip_write: 1,
        });
        assert!(err.is_err());
    }

    #[test]
    fn write_thread_frag_index_updates_after_drain() {
        let mut wt = WriteThread::new(10, 2, 2);
        for _ in 0..3 {
            wt.tick();
        }
        wt.request_coalesce(CoalesceRequest {
            new_frag: 0,
            skip_write: 0,
        })
        .unwrap();
        // Drain the 2-fragment backlog.
        wt.tick();
        wt.tick();
        assert_eq!(wt.frag(), 0);
        assert!(!wt.coalescing()); // skip_write = 0 ⇒ no quiet period
    }
}
