//! Buffer-memory accounting for time-fragmented delivery (§3.2.1).
//!
//! Solving time fragmentation is not free: every fragment read before its
//! delivery interval occupies one fragment-sized buffer until it is
//! transmitted, and a display admitted with total offset `Σ wᵢ` holds that
//! many buffers for its entire lifetime. [`BufferTracker`] charges and
//! releases those buffers and reports the high-water mark — the number the
//! system architect must actually provision (on top of the per-disk
//! masking buffer of equation (1), see [`ss_disk::min_buffer_memory`]).

use serde::{Deserialize, Serialize};
use ss_types::{Bytes, Error, Result};

/// Tracks fragment-sized delivery buffers across concurrent displays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BufferTracker {
    fragment: Bytes,
    capacity: Option<u64>,
    in_use: u64,
    peak: u64,
    total_acquired: u64,
}

impl BufferTracker {
    /// A tracker for buffers of one fragment each; `capacity` bounds the
    /// total simultaneously-held buffers (`None` = unbounded accounting).
    pub fn new(fragment: Bytes, capacity: Option<u64>) -> Self {
        BufferTracker {
            fragment,
            capacity,
            in_use: 0,
            peak: 0,
            total_acquired: 0,
        }
    }

    /// Charges `fragments` buffers for an admitted display. Fails without
    /// side effects if the capacity would be exceeded.
    pub fn acquire(&mut self, fragments: u64) -> Result<()> {
        if let Some(cap) = self.capacity {
            if self.in_use + fragments > cap {
                return Err(Error::InvalidState {
                    reason: format!(
                        "buffer pool exhausted: {} in use + {fragments} requested > {cap}",
                        self.in_use
                    ),
                });
            }
        }
        self.in_use += fragments;
        self.total_acquired += fragments;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases a display's buffers. Panics on over-release (a logic bug).
    pub fn release(&mut self, fragments: u64) {
        assert!(
            fragments <= self.in_use,
            "over-release: {fragments} > {} in use",
            self.in_use
        );
        self.in_use -= fragments;
    }

    /// Buffers currently held.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark since construction.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// High-water mark in bytes.
    pub fn peak_bytes(&self) -> Bytes {
        self.fragment * self.peak
    }

    /// Buffers acquired over the tracker's lifetime (throughput of the
    /// buffering machinery, not an occupancy).
    pub fn total_acquired(&self) -> u64 {
        self.total_acquired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_and_peak() {
        let mut b = BufferTracker::new(Bytes::megabytes(1), None);
        b.acquire(3).unwrap();
        b.acquire(2).unwrap();
        assert_eq!(b.in_use(), 5);
        b.release(3);
        b.acquire(1).unwrap();
        assert_eq!(b.in_use(), 3);
        assert_eq!(b.peak(), 5);
        assert_eq!(b.peak_bytes(), Bytes::megabytes(5));
        assert_eq!(b.total_acquired(), 6);
    }

    #[test]
    fn capacity_is_enforced_atomically() {
        let mut b = BufferTracker::new(Bytes::megabytes(1), Some(4));
        b.acquire(3).unwrap();
        let err = b.acquire(2).unwrap_err();
        assert!(matches!(err, Error::InvalidState { .. }));
        assert_eq!(b.in_use(), 3); // unchanged by the failed acquire
        b.acquire(1).unwrap();
        assert_eq!(b.in_use(), 4);
    }

    #[test]
    fn zero_acquire_is_free() {
        let mut b = BufferTracker::new(Bytes::megabytes(1), Some(0));
        b.acquire(0).unwrap();
        assert_eq!(b.peak(), 0);
    }

    #[test]
    #[should_panic(expected = "over-release")]
    fn over_release_panics() {
        let mut b = BufferTracker::new(Bytes::megabytes(1), None);
        b.acquire(1).unwrap();
        b.release(2);
    }
}
