//! The rotating **virtual disk** coordinate frame (§3.2.1).
//!
//! Staggered placement puts subobject `X_{i+1}` exactly `k` disks to the
//! right of `X_i`, so a display's disk set shifts right by `k` every time
//! interval. Changing to a coordinate frame that rotates along with the
//! data — *virtual disks* — makes an active display occupy a **fixed** set
//! of `M` virtual disks for its entire lifetime, reducing admission control
//! to a free-slot search.
//!
//! We define the virtual index of physical disk `p` at interval `t` as
//! `v = (p − k·t) mod D`, equivalently `physical(v, t) = (v + k·t) mod D`.
//! (The paper states the mapping as "virtual disk *i* at time interval *t*
//! is physical disk `(i − kt) mod D`"; the two conventions differ only in
//! which direction is called positive — under ours, the virtual disk that
//! reads the first fragment of subobject `X_i` during one interval reads
//! the first fragment of `X_{i+1}` in the next, exactly the property the
//! paper's algorithms rely on.)

use serde::{Deserialize, Serialize};

/// The rotating frame: `D` disks with stride `k` per interval.
///
/// ```
/// use ss_core::frame::VirtualFrame;
///
/// let f = VirtualFrame::new(8, 1);
/// // A virtual disk advances one physical disk per interval...
/// assert_eq!(f.physical(6, 0), 6);
/// assert_eq!(f.physical(6, 2), 0); // ...wrapping around the farm.
/// // The two maps are inverse at every instant.
/// assert_eq!(f.virtual_of(f.physical(3, 17), 17), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualFrame {
    disks: u32,
    stride: u32,
}

impl VirtualFrame {
    /// Creates a frame over `disks` drives rotating `stride` per interval.
    /// `stride` is reduced modulo `disks`; a reduced stride of 0 (i.e.
    /// `k = D`, the virtual-replication degenerate case) is allowed and
    /// makes the frame stationary.
    pub fn new(disks: u32, stride: u32) -> Self {
        assert!(disks > 0, "need at least one disk");
        VirtualFrame {
            disks,
            stride: stride % disks,
        }
    }

    /// Number of physical disks `D`.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// The reduced stride `k mod D`.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// The physical disk under virtual disk `v` at interval `t`:
    /// `(v + k·t) mod D`.
    pub fn physical(&self, v: u32, t: u64) -> u32 {
        debug_assert!(v < self.disks);
        let shift = (u64::from(self.stride) * t) % u64::from(self.disks);
        ((u64::from(v) + shift) % u64::from(self.disks)) as u32
    }

    /// The virtual index of physical disk `p` at interval `t`:
    /// `(p − k·t) mod D`.
    pub fn virtual_of(&self, p: u32, t: u64) -> u32 {
        debug_assert!(p < self.disks);
        let shift = (u64::from(self.stride) * t) % u64::from(self.disks);
        ((u64::from(p) + u64::from(self.disks) - shift) % u64::from(self.disks)) as u32
    }

    /// The earliest interval `t' ≥ t` at which virtual disk `v` sits over
    /// physical disk `p`, or `None` if it never does (possible only when
    /// `gcd(D, k)` does not divide the needed displacement). With a
    /// stationary frame (`k mod D = 0`), returns `t` iff `v == p`.
    pub fn next_alignment(&self, v: u32, p: u32, t: u64) -> Option<u64> {
        let d = u64::from(self.disks);
        let k = u64::from(self.stride);
        let need = (u64::from(p) + d - u64::from(self.physical(v, t) % self.disks)) % d;
        if need == 0 {
            return Some(t);
        }
        if k == 0 {
            return None;
        }
        // Solve k·x ≡ need (mod D) for the smallest x ≥ 1.
        let g = gcd(k, d);
        if need % g != 0 {
            return None;
        }
        let (k1, d1, n1) = (k / g, d / g, need / g);
        // x ≡ n1 · k1⁻¹ (mod d1).
        let inv = mod_inverse(k1, d1).expect("k1 and d1 are coprime by construction");
        let x = (n1 % d1) * inv % d1;
        let x = if x == 0 { d1 } else { x };
        Some(t + x)
    }
}

/// Greatest common divisor (Euclid).
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `m` (extended Euclid); `None` if
/// `gcd(a, m) != 1`. `m == 1` yields `Some(0)`.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 1 {
        return Some(0);
    }
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let m = m as i128;
    Some(((old_s % m + m) % m) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_and_virtual_are_inverse() {
        let f = VirtualFrame::new(12, 5);
        for t in [0u64, 1, 7, 100, 12345] {
            for v in 0..12 {
                let p = f.physical(v, t);
                assert_eq!(f.virtual_of(p, t), v, "t={t} v={v}");
            }
        }
    }

    #[test]
    fn frame_advances_by_stride_each_interval() {
        let f = VirtualFrame::new(8, 1);
        // Figure 6 setting: D=8, k=1. The free slot over physical disk 6
        // at t=0 is over disk 7 at t=1 and disk 0 at t=2 — the paper's
        // "will not be in position to read fragment X0.0 until time 2".
        let v = f.virtual_of(6, 0);
        assert_eq!(f.physical(v, 1), 7);
        assert_eq!(f.physical(v, 2), 0);
    }

    #[test]
    fn stride_d_is_stationary() {
        // k = D implements virtual data replication: nothing moves.
        let f = VirtualFrame::new(10, 10);
        assert_eq!(f.stride(), 0);
        for t in 0..50 {
            assert_eq!(f.physical(3, t), 3);
        }
    }

    #[test]
    fn next_alignment_simple_stride() {
        let f = VirtualFrame::new(8, 1);
        let v = f.virtual_of(6, 0); // slot over disk 6 at t=0
        assert_eq!(f.next_alignment(v, 6, 0), Some(0));
        assert_eq!(f.next_alignment(v, 0, 0), Some(2));
        assert_eq!(f.next_alignment(v, 5, 0), Some(7));
        // And alignment repeats after a full cycle: from t=1 the next
        // visit to disk 0 is still t=2.
        assert_eq!(f.next_alignment(v, 0, 1), Some(2));
        assert_eq!(f.next_alignment(v, 0, 3), Some(2 + 8));
    }

    #[test]
    fn next_alignment_with_composite_stride() {
        // D=12, k=4: g = 4, a virtual disk only visits physical disks in
        // its residue class mod 4.
        let f = VirtualFrame::new(12, 4);
        assert_eq!(f.physical(0, 0), 0);
        assert_eq!(f.next_alignment(0, 4, 0), Some(1));
        assert_eq!(f.next_alignment(0, 8, 0), Some(2));
        assert_eq!(f.next_alignment(0, 0, 1), Some(3));
        // Unreachable: disk 1 is in a different residue class.
        assert_eq!(f.next_alignment(0, 1, 0), None);
    }

    #[test]
    fn next_alignment_stationary_frame() {
        let f = VirtualFrame::new(5, 0);
        assert_eq!(f.next_alignment(2, 2, 7), Some(7));
        assert_eq!(f.next_alignment(2, 3, 7), None);
    }

    #[test]
    fn next_alignment_agrees_with_brute_force() {
        for (d, k) in [(7u32, 3u32), (12, 5), (12, 4), (10, 2), (9, 6)] {
            let f = VirtualFrame::new(d, k);
            for v in 0..d {
                for p in 0..d {
                    for t0 in [0u64, 3] {
                        let brute =
                            (t0..t0 + 2 * u64::from(d) + 2).find(|&t| f.physical(v, t) == p);
                        assert_eq!(
                            f.next_alignment(v, p, t0),
                            brute,
                            "d={d} k={k} v={v} p={p} t0={t0}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(mod_inverse(3, 7), Some(5));
        assert_eq!(mod_inverse(4, 8), None);
        assert_eq!(mod_inverse(1, 1), Some(0));
    }
}
