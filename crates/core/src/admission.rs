//! Interval-granularity admission control over the virtual-disk frame.
//!
//! Because an admitted display occupies a fixed set of `M` virtual disks
//! (see [`crate::frame`]), the entire scheduling state is one number per
//! virtual disk: the first interval at which it is free again. Admission is
//! then:
//!
//! * **Contiguous** — the `M` virtual disks currently over the physical
//!   disks holding `X_0` must all be free *now*. This is the base scheme
//!   of §3.1/§3.2, and the only one the paper's §4 simulation uses.
//! * **Fragmented** — §3.2.1: any `M` free virtual disks will do, provided
//!   each can *reach* its fragment's physical start position no later than
//!   the virtual disk serving fragment 0 reaches `X_{0.0}` (fragments read
//!   early are buffered; fragment 0 is always pipelined directly, matching
//!   Algorithm 1's `w_offset = z_i − z_0 − i ≥ 0`). The grant reports the
//!   total buffer bill.

use crate::frame::{gcd, VirtualFrame};
use serde::{Deserialize, Serialize};
use ss_types::{Error, ObjectId, Result};

/// How aggressively admission may assemble a display from free disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// Only the `M` aligned virtual disks, all free at the current
    /// interval.
    Contiguous,
    /// Use any free virtual disks, buffering early-read fragments, as long
    /// as the *total* backlog stays within `max_buffer_fragments` fragments
    /// of memory (§3.2.1) and delivery can begin within
    /// `max_delay_intervals` of the request.
    Fragmented {
        /// Upper bound on Σ wᵢ, the total number of fragment-sized buffers
        /// the display may hold at once.
        max_buffer_fragments: u64,
        /// Upper bound on `delivery_start − now`; plans starting later are
        /// rejected so the caller can retry (or queue) instead of
        /// committing disks far into the future.
        max_delay_intervals: u64,
    },
}

/// A successful admission: which virtual disks serve the display and when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionGrant {
    /// The admitted object.
    pub object: ObjectId,
    /// `z_i`: the virtual disk serving fragment `i`.
    pub virtual_disks: Vec<u32>,
    /// `T_i`: the interval at which `z_i` begins reading fragment `i` of
    /// subobject 0 (aligned with the data).
    pub read_start: Vec<u64>,
    /// The interval at which synchronized delivery of subobject 0 begins
    /// (`max T_i`; equals every `T_i` for a contiguous grant).
    pub delivery_start: u64,
    /// One past the last interval during which any granted disk reads.
    pub end_interval: u64,
    /// Total buffer bill: Σ (delivery_start − T_i) fragment-sized buffers.
    pub buffer_fragments: u64,
    /// Extra virtual disks booked to carry parity reads for degraded
    /// (failure-aware) admission: one per parity group whose data reads
    /// visit a failed disk, committed over the same reading window as the
    /// display. Empty for every clean grant.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub parity_companions: Vec<u32>,
    /// Number of (fragment, interval) reads in this grant that fall inside
    /// a hard outage window and are served by parity-group reconstruction
    /// instead of the failed disk. Zero for every clean grant.
    #[serde(default, skip_serializing_if = "is_zero")]
    pub reconstructed_intervals: u64,
}

// Referenced only from the derived Serialize impl, which the dead-code
// pass does not count as a use.
#[allow(dead_code)]
fn is_zero(v: &u64) -> bool {
    *v == 0
}

impl AdmissionGrant {
    /// The startup latency in intervals relative to `now`.
    pub fn latency_intervals(&self, now: u64) -> u64 {
        self.delivery_start - now
    }
}

/// A known window of physical-disk unavailability, in interval units.
///
/// Hard outages (`hard == true`, a failed disk) lose any read scheduled
/// inside the window; soft outages (a transient slow episode) only steer
/// *new* plans away — reads already committed still complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// The physical disk that is unavailable.
    pub disk: u32,
    /// First affected interval.
    pub from: u64,
    /// First interval at which the disk serves again (exclusive end).
    pub until: u64,
    /// True for a failed disk, false for a slow episode.
    pub hard: bool,
}

impl Outage {
    /// True when interval `t` falls inside this window.
    pub fn covers(&self, t: u64) -> bool {
        self.from <= t && t < self.until
    }
}

/// The per-virtual-disk schedule: one `free_from` interval per virtual
/// disk.
///
/// ```
/// use ss_core::admission::{AdmissionPolicy, IntervalScheduler};
/// use ss_core::frame::VirtualFrame;
/// use ss_types::ObjectId;
///
/// let mut s = IntervalScheduler::new(VirtualFrame::new(12, 1));
/// let grant = s
///     .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
///     .unwrap();
/// assert_eq!(grant.virtual_disks, vec![4, 5, 6]);
/// assert_eq!(grant.buffer_fragments, 0);
/// // A conflicting display is rejected until those disks free.
/// assert!(s.try_admit(0, ObjectId(1), 5, 3, 13, AdmissionPolicy::Contiguous).is_err());
/// assert!(s.try_admit(13, ObjectId(1), 5, 3, 13, AdmissionPolicy::Contiguous).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct IntervalScheduler {
    frame: VirtualFrame,
    /// `free_from[v]`: the first interval at which virtual disk `v` has no
    /// remaining committed reads. This is the struct-of-arrays hot state:
    /// both planners and the saturated-reject scan sweep it as contiguous
    /// `u64` words, never through per-disk structs.
    free_from: Vec<u64>,
    /// Ascending copy of `free_from`, rebuilt when `index_dirty`. Turns
    /// `free_count` — called on every rejection and every utilization
    /// sample — into one `O(log D)` partition-point after an `O(D log D)`
    /// rebuild per mutation batch, instead of an `O(D)` scan per call; at
    /// 1000 disks with hundreds of waiters retrying per interval that is
    /// the admission hot path. The rebuild happens eagerly in `&mut`
    /// methods ([`Self::refresh_index`], called at every `try_admit`
    /// entry) rather than behind interior mutability, which keeps the
    /// scheduler `Sync` so read-only admission probes can fan out across
    /// threads; `&self` readers that catch it stale fall back to an
    /// exact `O(D)` sweep of `free_from`.
    sorted: Vec<u64>,
    /// True when `free_from` has mutated since `sorted` was rebuilt.
    index_dirty: bool,
    /// Bumped by every mutation that can change a planner's verdict
    /// (commits, horizon overrides, outage and parity changes). Parallel
    /// probe passes snapshot it and discard any probe computed against a
    /// stale version.
    version: u64,
    /// Known unavailability windows (fault injection). Empty in a
    /// fault-free run, in which case every outage-aware code path below
    /// reduces to the baseline behavior exactly.
    outages: Vec<Outage>,
    /// Parity-group size (data fragments per rotated parity fragment),
    /// when the placement carries parity. `None` — the default — keeps
    /// every planner bit-identical to the parity-free scheme; `Some(g)`
    /// arms the degraded (failure-aware) admission path, which is itself
    /// only reachable while outages are registered.
    parity_group: Option<u32>,
}

impl IntervalScheduler {
    /// An all-idle scheduler over `frame`.
    pub fn new(frame: VirtualFrame) -> Self {
        IntervalScheduler {
            free_from: vec![0; frame.disks() as usize],
            sorted: vec![0; frame.disks() as usize],
            frame,
            index_dirty: false,
            version: 0,
            outages: Vec::new(),
            parity_group: None,
        }
    }

    /// Arms (or disarms) failure-aware admission: `Some(g)` declares that
    /// the placement carries one rotated parity fragment per `g` data
    /// fragments, at rotational offsets `degree..degree + ceil(degree/g)`
    /// past each subobject's start disk. `None` (the default) keeps every
    /// planner bit-identical to the parity-free scheme.
    pub fn set_parity_group(&mut self, group: Option<u32>) {
        if let Some(g) = group {
            assert!(g >= 1, "parity group must cover at least one fragment");
        }
        self.parity_group = group;
        self.version = self.version.wrapping_add(1);
    }

    /// The configured parity-group size, if any.
    pub fn parity_group(&self) -> Option<u32> {
        self.parity_group
    }

    /// Registers a known unavailability window. Both admission planners
    /// and the coalescing planner refuse to place reads inside it.
    pub fn add_outage(&mut self, outage: Outage) {
        ss_obs::obs!(ss_obs::Event::OutageAdded {
            disk: outage.disk,
            from: outage.from,
            until: outage.until,
        });
        self.outages.push(outage);
        self.version = self.version.wrapping_add(1);
    }

    /// Drops windows that have fully elapsed by interval `now`.
    pub fn prune_outages(&mut self, now: u64) {
        self.outages.retain(|o| o.until > now);
        self.version = self.version.wrapping_add(1);
    }

    /// The currently registered unavailability windows.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// True when any outage window is registered (the cheap fault gate).
    pub fn has_outages(&self) -> bool {
        !self.outages.is_empty()
    }

    /// True when virtual disk `v`, reading one fragment per interval over
    /// `[start_t, end_t)`, would visit an unavailable physical disk.
    ///
    /// Virtual disk `v` sits over physical `(v + k·t) mod D` at interval
    /// `t`, so per outage the question is one modular alignment solve: the
    /// earliest visit of the outage's disk at or after
    /// `max(start_t, outage.from)` — later visits only recur further out
    /// (every `D / gcd(D, k)` intervals), so the first one decides.
    pub fn read_conflict(&self, v: u32, start_t: u64, end_t: u64) -> bool {
        self.outages.iter().any(|o| {
            let lo = start_t.max(o.from);
            let hi = end_t.min(o.until);
            lo < hi
                && self
                    .frame
                    .next_alignment(v, o.disk, lo)
                    .is_some_and(|t| t < hi)
        })
    }

    /// Like [`IntervalScheduler::read_conflict`], but restricted to hard
    /// outages (failed disks): committed reads survive a slow episode but
    /// not a failure.
    pub fn hard_read_conflict(&self, v: u32, start_t: u64, end_t: u64) -> bool {
        self.outages.iter().any(|o| {
            o.hard && {
                let lo = start_t.max(o.from);
                let hi = end_t.min(o.until);
                lo < hi
                    && self
                        .frame
                        .next_alignment(v, o.disk, lo)
                        .is_some_and(|t| t < hi)
            }
        })
    }

    /// Like [`IntervalScheduler::read_conflict`], but restricted to soft
    /// outages (slow episodes): a slow disk still holds its data, so a
    /// degraded plan never spends reconstruction bandwidth on it — it
    /// simply refuses, exactly like the clean planners.
    fn soft_read_conflict(&self, v: u32, start_t: u64, end_t: u64) -> bool {
        self.outages.iter().any(|o| {
            !o.hard && {
                let lo = start_t.max(o.from);
                let hi = end_t.min(o.until);
                lo < hi
                    && self
                        .frame
                        .next_alignment(v, o.disk, lo)
                        .is_some_and(|t| t < hi)
            }
        })
    }

    /// Collects into `out` every interval in `[start_t, end_t)` at which
    /// virtual disk `v` sits over a hard-failed physical disk (sorted,
    /// deduplicated). Alignments with a given disk recur every
    /// `D / gcd(D, k)` intervals, so each outage contributes an arithmetic
    /// progression from its first alignment.
    fn hard_conflict_intervals(&self, v: u32, start_t: u64, end_t: u64, out: &mut Vec<u64>) {
        out.clear();
        let d = u64::from(self.frame.disks());
        let k = u64::from(self.frame.stride());
        let period = if k == 0 { 1 } else { d / gcd(d, k) };
        for o in &self.outages {
            if !o.hard {
                continue;
            }
            let lo = start_t.max(o.from);
            let hi = end_t.min(o.until);
            if lo >= hi {
                continue;
            }
            let Some(first) = self.frame.next_alignment(v, o.disk, lo) else {
                continue;
            };
            let mut t = first;
            while t < hi {
                out.push(t);
                t += period;
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Failure-aware (degraded) aligned planning at interval `t0`: admit a
    /// display even though its aligned virtual disks visit failed disks,
    /// provided every lost read is reconstructable from its parity group.
    /// The surviving group members are already read concurrently (the plan
    /// is aligned, so all fragments of a subobject are fetched in the same
    /// interval); the only extra bandwidth is the group's rotated parity
    /// fragment, fetched by one *companion* virtual disk — the one sitting
    /// over the parity fragment's home at `t0`, which stays aligned with it
    /// for the whole window — booked alongside the display.
    ///
    /// Reconstruction fails (returns `None`, so callers fall through to
    /// their normal rejection) when two members of one group — parity
    /// included — are lost in the same interval, when a member would read
    /// through a slow episode, or when a needed companion is busy.
    fn plan_degraded_aligned(
        &self,
        t0: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
    ) -> Option<AdmissionGrant> {
        let group = self.parity_group?;
        if !self.outages.iter().any(|o| o.hard) {
            return None;
        }
        let d = self.frame.disks();
        let groups = degree.div_ceil(group);
        // Parity fragments live at rotational offsets degree..degree+groups
        // past the start disk; the inflated layout must fit the farm for
        // the companions to be distinct disks.
        if degree + groups > d {
            return None;
        }
        let window = t0 + u64::from(subobjects);
        let mut conflicts: Vec<Vec<u64>> = Vec::with_capacity(degree as usize);
        let mut scratch = Vec::new();
        let mut reconstructed = 0u64;
        for i in 0..degree {
            let v = self.frame.virtual_of((start_disk + i) % d, t0);
            if !self.is_free(v, t0) || self.soft_read_conflict(v, t0, window) {
                return None;
            }
            self.hard_conflict_intervals(v, t0, window, &mut scratch);
            reconstructed += scratch.len() as u64;
            conflicts.push(scratch.clone());
        }
        if reconstructed == 0 {
            // Nothing lost at this alignment: the clean planner's verdict
            // stands.
            return None;
        }
        let mut companions = Vec::with_capacity(groups as usize);
        for q in 0..groups {
            let members = (q * group)..degree.min((q + 1) * group);
            // Every interval at which some member of this group is lost.
            let mut lost: Vec<u64> = members
                .clone()
                .flat_map(|i| conflicts[i as usize].iter().copied())
                .collect();
            lost.sort_unstable();
            if lost.windows(2).any(|w| w[0] == w[1]) {
                // Two members lost in the same interval: the group equation
                // has two unknowns — not reconstructable.
                return None;
            }
            if lost.is_empty() {
                continue; // group untouched, no parity read needed
            }
            let v_p = self.frame.virtual_of((start_disk + degree + q) % d, t0);
            if !self.is_free(v_p, t0) {
                return None;
            }
            // The parity fragment must itself be readable at every lost
            // interval — its companion disk must not sit over a failed or
            // slow disk exactly when the reconstruction needs it.
            for &t in &lost {
                let p = self.frame.physical(v_p, t);
                if self.outages.iter().any(|o| o.disk == p && o.covers(t)) {
                    return None;
                }
            }
            companions.push(v_p);
        }
        Some(AdmissionGrant {
            object,
            virtual_disks: (0..degree)
                .map(|i| self.frame.virtual_of((start_disk + i) % d, t0))
                .collect(),
            read_start: vec![t0; degree as usize],
            delivery_start: t0,
            end_interval: window,
            buffer_fragments: 0,
            parity_companions: companions,
            reconstructed_intervals: reconstructed,
        })
    }

    /// The frame this scheduler operates in.
    pub fn frame(&self) -> &VirtualFrame {
        &self.frame
    }

    /// Marks the sorted index stale and bumps the mutation version after
    /// a `free_from` change.
    fn invalidate_index(&mut self) {
        self.index_dirty = true;
        self.version = self.version.wrapping_add(1);
    }

    /// The scheduler's mutation version: bumped by every state change
    /// that can alter a planner's verdict. A read-only probe computed at
    /// version `v` is valid exactly while `version() == v`.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rebuilds the ascending free-horizon index if stale. `try_admit`
    /// calls this on entry; parallel callers invoke it (or the sharded
    /// variant) before fanning out read-only probes so every shard sees
    /// the fast clean-index path.
    #[inline]
    pub fn refresh_index(&mut self) {
        if !self.index_dirty {
            return;
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(&self.free_from);
        self.sorted.sort_unstable();
        self.index_dirty = false;
    }

    /// Sharded index rebuild: copies `free_from`, hands `exec` one
    /// mutable chunk per shard to sort (typically on pool workers), then
    /// merges the sorted chunks in fixed shard order. The merged result
    /// is the ascending multiset of horizons — element-for-element
    /// identical to the serial `sort_unstable`, whatever the thread
    /// interleaving, because equal `u64` keys are indistinguishable.
    ///
    /// `exec` must leave every chunk sorted ascending; this is checked
    /// in debug builds.
    pub fn refresh_index_sharded(&mut self, shards: usize, exec: impl FnOnce(&mut [&mut [u64]])) {
        if !self.index_dirty {
            return;
        }
        let shards = shards.max(1);
        if shards == 1 || self.free_from.len() < 2 * shards {
            self.refresh_index();
            return;
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(&self.free_from);
        let chunk = self.sorted.len().div_ceil(shards);
        {
            let mut parts: Vec<&mut [u64]> = self.sorted.chunks_mut(chunk).collect();
            exec(&mut parts);
        }
        debug_assert!(self
            .sorted
            .chunks(chunk)
            .all(|c| c.windows(2).all(|w| w[0] <= w[1])));
        // Fixed-order k-way merge of the sorted chunks.
        let mut merged = Vec::with_capacity(self.sorted.len());
        let mut cursors: Vec<usize> = self.sorted.chunks(chunk).map(|_| 0).collect();
        let starts: Vec<usize> = (0..cursors.len()).map(|i| i * chunk).collect();
        let len = self.sorted.len();
        while merged.len() < len {
            let mut best: Option<(u64, usize)> = None;
            for (i, &cur) in cursors.iter().enumerate() {
                let at = starts[i] + cur;
                let end = (starts[i] + chunk).min(len);
                if at < end {
                    let key = self.sorted[at];
                    if best.is_none_or(|(k, _)| key < k) {
                        best = Some((key, i));
                    }
                }
            }
            let (key, i) = best.expect("cursors exhausted before merge filled");
            merged.push(key);
            cursors[i] += 1;
        }
        self.sorted = merged;
        self.index_dirty = false;
    }

    /// Number of free-horizons at or before `t` — the count of virtual
    /// disks free at `t`. Uses the sorted index when clean, otherwise an
    /// exact linear sweep of the (contiguous) horizon array.
    #[inline]
    fn horizon_count(&self, t: u64) -> u32 {
        if self.index_dirty {
            self.free_from.iter().filter(|&&f| f <= t).count() as u32
        } else {
            self.sorted.partition_point(|&f| f <= t) as u32
        }
    }

    /// Number of virtual disks free at interval `t`.
    #[inline]
    pub fn free_count(&self, t: u64) -> u32 {
        self.horizon_count(t)
    }

    /// True iff virtual disk `v` is free at interval `t`.
    pub fn is_free(&self, v: u32, t: u64) -> bool {
        self.free_from[v as usize] <= t
    }

    /// The committed-busy horizon of virtual disk `v`.
    pub fn free_from(&self, v: u32) -> u64 {
        self.free_from[v as usize]
    }

    /// Overrides the committed-busy horizon of virtual disk `v`. Used by
    /// the dynamic-coalescing planner (shortening a handing-over disk,
    /// extending the taker) and by tests constructing occupancy patterns.
    pub fn set_free_from(&mut self, v: u32, free_from: u64) {
        self.free_from[v as usize] = free_from;
        self.invalidate_index();
    }

    /// Attempts to admit a display of `object` at interval `now`: first
    /// subobject starting on physical disk `start_disk`, `degree` fragments
    /// per subobject, `subobjects` stripes. On success the granted virtual
    /// disks are committed through their reading windows.
    ///
    /// Equivalent to [`Self::refresh_index`] + [`Self::plan`] +
    /// (on success) [`Self::commit`]; parallel admission runs the plan
    /// step on worker threads and replays only the commit serially.
    pub fn try_admit(
        &mut self,
        now: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionGrant> {
        self.refresh_index();
        let grant = self.plan(now, object, start_disk, degree, subobjects, policy)?;
        self.commit(now, &grant, subobjects);
        Ok(grant)
    }

    /// The read-only planning half of [`Self::try_admit`]: computes the
    /// verdict — grant or the exact rejection error — without touching
    /// any state. Safe to run concurrently from many threads; a verdict
    /// is valid for [`Self::commit`] only while [`Self::version`] is
    /// unchanged from when the plan ran.
    pub fn plan(
        &self,
        now: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
        policy: AdmissionPolicy,
    ) -> Result<AdmissionGrant> {
        assert!(degree >= 1 && degree <= self.frame.disks());
        assert!(subobjects >= 1);
        match policy {
            AdmissionPolicy::Contiguous => {
                self.plan_contiguous(now, object, start_disk, degree, subobjects)
            }
            AdmissionPolicy::Fragmented {
                max_buffer_fragments,
                max_delay_intervals,
            } => self.plan_fragmented(
                now,
                object,
                start_disk,
                degree,
                subobjects,
                max_buffer_fragments,
                max_delay_intervals,
            ),
        }
    }

    /// The mutating half of [`Self::try_admit`]: books every granted
    /// virtual disk (and parity companion) through its reading window and
    /// emits the observability events. `grant` must have been produced by
    /// [`Self::plan`] at the current [`Self::version`] — committing a
    /// stale grant would double-book disks, which debug builds catch.
    pub fn commit(&mut self, now: u64, grant: &AdmissionGrant, subobjects: u32) {
        for (idx, &v) in grant.virtual_disks.iter().enumerate() {
            let end = grant.read_start[idx] + u64::from(subobjects);
            debug_assert!(self.free_from[v as usize] <= grant.read_start[idx]);
            self.free_from[v as usize] = end;
        }
        // Companions exist only on degraded (aligned) grants: book them
        // over the display's whole reading window, like any other read.
        for &v in &grant.parity_companions {
            debug_assert!(self.free_from[v as usize] <= grant.delivery_start);
            self.free_from[v as usize] = grant.end_interval;
        }
        self.invalidate_index();
        if ss_obs::enabled() {
            for (idx, &v) in grant.virtual_disks.iter().enumerate() {
                ss_obs::record(ss_obs::Event::ReadSpan {
                    object: grant.object.0,
                    frag: idx as u32,
                    vdisk: v,
                    base: grant.read_start[idx],
                    subobjects: u64::from(subobjects),
                });
            }
            if grant.reconstructed_intervals > 0 {
                ss_obs::record(ss_obs::Event::ParityPlan {
                    object: grant.object.0,
                    interval: now,
                    reads: grant.reconstructed_intervals,
                    companions: grant.parity_companions.len() as u32,
                });
            }
        }
    }

    fn plan_contiguous(
        &self,
        now: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
    ) -> Result<AdmissionGrant> {
        let d = self.frame.disks();
        let window = now + u64::from(subobjects);
        // Count first, allocate only on success: at saturation this path
        // runs once per queued waiter per interval.
        //
        // Aligned fragments occupy *contiguous* virtual indices: with
        // `v0 = virtual_of(start_disk, now)`, fragment `i` sits on
        // `(v0 + i) mod D` (adding one to the physical index adds one to
        // the virtual index, mod D). In the fault-free case the whole
        // feasibility check is therefore one or two contiguous sweeps of
        // the `free_from` array — pure struct-of-arrays word compares,
        // no modular solve and no outage scan per fragment.
        let v0 = self.frame.virtual_of(start_disk % d, now);
        let free = if self.outages.is_empty() {
            let first = (d - v0).min(degree) as usize;
            let lo = v0 as usize;
            let head = &self.free_from[lo..lo + first];
            let tail = &self.free_from[..degree as usize - first];
            (head.iter().filter(|&&f| f <= now).count()
                + tail.iter().filter(|&&f| f <= now).count()) as u32
        } else {
            let mut free = 0u32;
            for i in 0..degree {
                let v = (v0 + i) % d;
                debug_assert_eq!(v, self.frame.virtual_of((start_disk + i) % d, now));
                if self.is_free(v, now) && !self.read_conflict(v, now, window) {
                    free += 1;
                }
            }
            free
        };
        if free < degree {
            // Before giving up under fault injection, try reconstructing
            // the lost reads from parity — reachable only with a parity
            // group configured and a hard outage registered.
            if let Some(g) = self.plan_degraded_aligned(now, object, start_disk, degree, subobjects)
            {
                return Ok(g);
            }
            return Err(Error::AdmissionRejected {
                object,
                needed: degree,
                free,
            });
        }
        let vs = (0..degree).map(|i| (v0 + i) % d).collect();
        Ok(AdmissionGrant {
            object,
            read_start: vec![now; degree as usize],
            virtual_disks: vs,
            delivery_start: now,
            end_interval: now + u64::from(subobjects),
            buffer_fragments: 0,
            parity_companions: Vec::new(),
            reconstructed_intervals: 0,
        })
    }

    /// Fragmented planning: choose, among all candidate assignments, the
    /// one with the earliest delivery start (smallest `T_0`), breaking
    /// ties toward the smallest buffer bill.
    #[allow(clippy::too_many_arguments)]
    fn plan_fragmented(
        &self,
        now: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
        max_buffer: u64,
        max_delay: u64,
    ) -> Result<AdmissionGrant> {
        let d = self.frame.disks();
        let k = self.frame.stride();
        // Every feasible read start satisfies T_i <= T_0 <= now + max_delay,
        // so all candidates live inside the delay window: enumerate it
        // directly — O(M x max_delay) instead of scanning all D disks with
        // a modular solve each (the hot path of mixed-media admission).
        let window_end = now + max_delay;
        // Cheap necessary condition first: every fragment needs its own
        // virtual disk that frees no later than its read start, so fewer
        // than `degree` disks free anywhere in the window means every
        // candidate assignment fails. All rejection paths below produce
        // this exact error value, so the shortcut is observably identical
        // — and it makes the saturated-farm retry storm O(log D) per
        // attempt instead of O(M × max_delay).
        let available = self.horizon_count(window_end);
        if available < degree {
            return Err(Error::AdmissionRejected {
                object,
                needed: degree,
                free: self.free_count(now),
            });
        }
        let mut arrivals: Vec<Vec<(u64, u32)>> = Vec::with_capacity(degree as usize);
        for i in 0..degree {
            let p = (start_disk + i) % d;
            let mut cands: Vec<(u64, u32)> = Vec::new();
            if k == 0 {
                // Stationary frame: only the disk itself, from the moment
                // it frees.
                let t = now.max(self.free_from[p as usize]);
                if t <= window_end && !self.read_conflict(p, t, t + u64::from(subobjects)) {
                    cands.push((t, p));
                }
            } else {
                // The virtual disk over `p` recedes by the stride each
                // interval (`virtual_of(p, t+1) = virtual_of(p, t) - k`),
                // so step it incrementally instead of paying the modular
                // solve per interval.
                let mut v = self.frame.virtual_of(p, now);
                for t in now..=window_end {
                    // The disk must be done with prior commitments before
                    // it starts reading for us — and, under fault
                    // injection, its reading window must clear every
                    // known unavailability window.
                    if self.free_from[v as usize] <= t
                        && !self.read_conflict(v, t, t + u64::from(subobjects))
                    {
                        cands.push((t, v));
                    }
                    v = if v >= k { v - k } else { v + d - k };
                }
            }
            if cands.is_empty() {
                // Under a long outage every slot in the window may be
                // conflicted for some fragment (the outage's disk realigns
                // with each virtual disk every D/gcd(D,k) intervals) — the
                // degraded fallback is the only way through.
                return self
                    .degraded_fragmented_fallback(
                        now, object, start_disk, degree, subobjects, max_delay,
                    )
                    .ok_or(Error::AdmissionRejected {
                        object,
                        needed: degree,
                        free: self.free_count(now),
                    });
            }
            arrivals.push(cands);
        }
        // Candidate delivery starts are the arrival times available for
        // fragment 0; try them in increasing order (they are generated
        // sorted by t). The `used` mask and partial assignment are reused
        // across candidates instead of reallocated per `t0`.
        let mut used = vec![false; d as usize];
        let mut chosen: Vec<(u64, u32)> = Vec::with_capacity(degree as usize);
        'outer: for &(t0, z0) in &arrivals[0] {
            for &(_, v) in &chosen {
                used[v as usize] = false;
            }
            chosen.clear();
            chosen.push((t0, z0));
            used[z0 as usize] = true;
            let mut buffer = 0u64;
            for frag_arrivals in arrivals.iter().skip(1) {
                // Latest arrival ≤ t0 on an unused disk minimizes buffering.
                let best = frag_arrivals
                    .iter()
                    .rev()
                    .find(|&&(t, v)| t <= t0 && !used[v as usize]);
                match best {
                    Some(&(t, v)) => {
                        used[v as usize] = true;
                        buffer += t0 - t;
                        chosen.push((t, v));
                    }
                    None => continue 'outer,
                }
            }
            if buffer > max_buffer {
                continue;
            }
            let (read_start, virtual_disks): (Vec<u64>, Vec<u32>) =
                std::mem::take(&mut chosen).into_iter().unzip();
            let end_interval = read_start
                .iter()
                .map(|&t| t + u64::from(subobjects))
                .max()
                .expect("degree >= 1");
            return Ok(AdmissionGrant {
                object,
                virtual_disks,
                read_start,
                delivery_start: t0,
                end_interval,
                buffer_fragments: buffer,
                parity_companions: Vec::new(),
                reconstructed_intervals: 0,
            });
        }
        self.degraded_fragmented_fallback(now, object, start_disk, degree, subobjects, max_delay)
            .ok_or(Error::AdmissionRejected {
                object,
                needed: degree,
                free: self.free_count(now),
            })
    }

    /// When the clean fragmented search fails under fault injection, scan
    /// the delay window for an *aligned* reconstruction plan instead: an
    /// aligned plan reads every surviving group member concurrently, which
    /// is exactly what makes parity reconstruction cost one companion read
    /// per damaged group rather than a re-fetch of the whole group.
    fn degraded_fragmented_fallback(
        &self,
        now: u64,
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
        max_delay: u64,
    ) -> Option<AdmissionGrant> {
        self.parity_group?;
        if !self.outages.iter().any(|o| o.hard) {
            return None;
        }
        (now..=now + max_delay)
            .find_map(|t0| self.plan_degraded_aligned(t0, object, start_disk, degree, subobjects))
    }

    /// Fraction of virtual-disk capacity committed at interval `t`.
    pub fn utilization(&self, t: u64) -> f64 {
        1.0 - f64::from(self.free_count(t)) / f64::from(self.frame.disks())
    }

    /// The first interval at which at least `m` virtual disks are free
    /// (both planners reject outright with fewer than `degree` free
    /// disks, so before this no admission of degree `m` can succeed).
    /// `None` when `m` exceeds the farm.
    pub fn earliest_free(&self, m: u32) -> Option<u64> {
        if m == 0 {
            return Some(0);
        }
        let m = m as usize;
        if self.index_dirty {
            // Stale-index fallback: the m-th smallest horizon via a
            // selection pass over a scratch copy. Rare — `try_admit`
            // refreshes eagerly, so this only fires for read-only
            // callers racing a mutation batch.
            if m > self.free_from.len() {
                return None;
            }
            let mut scratch = self.free_from.clone();
            let (_, kth, _) = scratch.select_nth_unstable(m - 1);
            Some(*kth)
        } else {
            self.sorted.get(m - 1).copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(d: u32, k: u32) -> IntervalScheduler {
        IntervalScheduler::new(VirtualFrame::new(d, k))
    }

    #[test]
    fn contiguous_admission_on_idle_farm() {
        let mut s = sched(12, 1);
        let g = s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        assert_eq!(g.virtual_disks, vec![4, 5, 6]);
        assert_eq!(g.delivery_start, 0);
        assert_eq!(g.end_interval, 13);
        assert_eq!(g.buffer_fragments, 0);
        assert_eq!(g.latency_intervals(0), 0);
        assert_eq!(s.free_count(0), 9);
        // The three virtual disks are busy through interval 12.
        assert!(!s.is_free(4, 12));
        assert!(s.is_free(4, 13));
    }

    #[test]
    fn contiguous_conflict_is_rejected() {
        let mut s = sched(12, 1);
        s.try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        // Object starting at disk 5 overlaps virtual disks 5,6.
        let err = s
            .try_admit(0, ObjectId(1), 5, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap_err();
        assert!(matches!(
            err,
            Error::AdmissionRejected {
                needed: 3,
                free: 1,
                ..
            }
        ));
    }

    #[test]
    fn contiguous_admission_respects_rotation() {
        // At t=3 with k=1, the virtual disks over physical 4..6 are 1..3.
        let mut s = sched(12, 1);
        let g = s
            .try_admit(3, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        assert_eq!(g.virtual_disks, vec![1, 2, 3]);
    }

    #[test]
    fn figure6_fragmented_admission() {
        // Figure 6: D = 8, k = 1, X with M = 2 starting on disk 0.
        // Virtual disks 2..5 are busy; 1 and 6 are free. Disk 1 is in
        // position for X0.1 now; the free slot over disk 6 reaches disk 0
        // at interval 2 and reads X0.0 directly. Fragment 1 is buffered
        // two intervals; delivery starts at interval 2.
        let mut s = sched(8, 1);
        for v in 2..=5 {
            s.set_free_from(v, 1000); // long-running other displays
        }
        s.set_free_from(0, 1000);
        s.set_free_from(7, 1000);
        let g = s
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 16,
                    max_delay_intervals: 8,
                },
            )
            .unwrap();
        assert_eq!(g.virtual_disks, vec![6, 1]);
        assert_eq!(g.read_start, vec![2, 0]);
        assert_eq!(g.delivery_start, 2);
        assert_eq!(g.buffer_fragments, 2);
        assert_eq!(g.end_interval, 12);
        // Contiguous admission would have been rejected outright.
        let mut s2 = sched(8, 1);
        for v in [0, 2, 3, 4, 5, 7] {
            s2.set_free_from(v, 1000);
        }
        assert!(s2
            .try_admit(0, ObjectId(0), 0, 2, 10, AdmissionPolicy::Contiguous)
            .is_err());
    }

    #[test]
    fn fragmented_respects_buffer_cap() {
        let mut s = sched(8, 1);
        for v in [0, 2, 3, 4, 5, 7] {
            s.set_free_from(v, 1000);
        }
        // The Figure 6 grant needs 2 buffers; cap at 1 and it must fail.
        let err = s
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 1,
                    max_delay_intervals: 8,
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::AdmissionRejected { .. }));
    }

    #[test]
    fn fragmented_prefers_aligned_disks_when_free() {
        // On an idle farm the fragmented planner finds the zero-buffer,
        // zero-latency contiguous assignment.
        let mut s = sched(12, 1);
        let g = s
            .try_admit(
                5,
                ObjectId(0),
                4,
                3,
                13,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 100,
                    max_delay_intervals: 100,
                },
            )
            .unwrap();
        assert_eq!(g.delivery_start, 5);
        assert_eq!(g.buffer_fragments, 0);
        assert_eq!(g.latency_intervals(5), 0);
    }

    #[test]
    fn fragmented_uses_busy_then_free_disks() {
        // A virtual disk busy until interval 3 can still take a fragment
        // whose alignment time is >= 3.
        let mut s = sched(8, 1);
        // All disks blocked for a long time except v=6 (free) and v=1
        // (free from interval 3).
        for v in 0..8 {
            s.set_free_from(v, 1000);
        }
        s.set_free_from(6, 0);
        s.set_free_from(1, 3);
        // Object M=2 at disk 0. Fragment 0 (disk 0): v=6 aligns at t=2
        // (free) or v=1 at t=7 (first alignment after it frees at 3).
        // Fragment 1 (disk 1): v=6 at t=3, v=1 at t=8. Taking t0=2 leaves
        // no partner ≤ 2, so the planner settles on t0=7 with v=1 reading
        // fragment 0 and v=6 reading fragment 1 at t=3 (4 buffers).
        let g = s
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 100,
                    max_delay_intervals: 100,
                },
            )
            .unwrap();
        assert_eq!(g.virtual_disks, vec![1, 6]);
        assert_eq!(g.read_start, vec![7, 3]);
        assert_eq!(g.delivery_start, 7);
        assert_eq!(g.buffer_fragments, 4);
    }

    #[test]
    fn fragmented_waits_for_busy_disk_to_free() {
        // Same farm, object starting at disk 3: v=6 reaches disk 3 at t=5
        // (fragment 0) and v=1 reaches disk 4 at t=3, right when it frees
        // — a 2-buffer plan delivering at interval 5.
        let mut s = sched(8, 1);
        for v in 0..8 {
            s.set_free_from(v, 1000);
        }
        s.set_free_from(6, 0);
        s.set_free_from(1, 3);
        let g = s
            .try_admit(
                0,
                ObjectId(1),
                3,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 100,
                    max_delay_intervals: 100,
                },
            )
            .unwrap();
        assert_eq!(g.virtual_disks, vec![6, 1]);
        assert_eq!(g.read_start, vec![5, 3]);
        assert_eq!(g.buffer_fragments, 2);
    }

    #[test]
    fn grants_never_double_book() {
        // Stress: admit many displays and verify no virtual disk is ever
        // committed to two overlapping reading windows.
        let mut s = sched(20, 1);
        let mut windows: Vec<(u32, u64, u64)> = Vec::new(); // (v, start, end)
        let mut id = 0u32;
        for t in 0..40u64 {
            for start in [0u32, 5, 10, 15] {
                if let Ok(g) = s.try_admit(
                    t,
                    ObjectId(id),
                    start,
                    3,
                    7,
                    AdmissionPolicy::Fragmented {
                        max_buffer_fragments: 8,
                        max_delay_intervals: 4,
                    },
                ) {
                    for (i, &v) in g.virtual_disks.iter().enumerate() {
                        windows.push((v, g.read_start[i], g.read_start[i] + 7));
                    }
                    id += 1;
                }
            }
        }
        assert!(id > 4, "expected several admissions, got {id}");
        for a in 0..windows.len() {
            for b in (a + 1)..windows.len() {
                let (va, sa, ea) = windows[a];
                let (vb, sb, eb) = windows[b];
                if va == vb {
                    assert!(ea <= sb || eb <= sa, "overlap on v{va}: {windows:?}");
                }
            }
        }
    }

    #[test]
    fn earliest_free_tracks_sorted_horizons() {
        let mut s = sched(4, 1);
        s.set_free_from(0, 7);
        s.set_free_from(1, 3);
        s.set_free_from(2, 3);
        // free_from = [7, 3, 3, 0] → sorted [0, 3, 3, 7].
        assert_eq!(s.earliest_free(0), Some(0));
        assert_eq!(s.earliest_free(1), Some(0));
        assert_eq!(s.earliest_free(2), Some(3));
        assert_eq!(s.earliest_free(3), Some(3));
        assert_eq!(s.earliest_free(4), Some(7));
        assert_eq!(s.earliest_free(5), None);
        // Consistency with free_count at the reported interval.
        for m in 1..=4u32 {
            let t = s.earliest_free(m).unwrap();
            assert!(s.free_count(t) >= m);
            assert!(t == 0 || s.free_count(t - 1) < m);
        }
    }

    #[test]
    fn outage_blocks_contiguous_admission_until_repair() {
        let mut s = sched(12, 1);
        // Disk 5 is down for intervals [0, 20): any display whose reads
        // visit disk 5 in that window must be rejected.
        s.add_outage(Outage {
            disk: 5,
            from: 0,
            until: 20,
            hard: true,
        });
        // Object at disk 4, M = 3, 13 subobjects: fragment 1 starts on
        // disk 5 — read at interval 0, inside the window.
        assert!(s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .is_err());
        // After the window, the same admission goes through.
        let g = s
            .try_admit(20, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        assert_eq!(g.virtual_disks.len(), 3);
        // And pruning removes the elapsed window entirely.
        s.prune_outages(20);
        assert!(!s.has_outages());
    }

    #[test]
    fn outage_steers_fragmented_plans_clear() {
        let mut s = sched(8, 1);
        s.add_outage(Outage {
            disk: 2,
            from: 0,
            until: 6,
            hard: true,
        });
        // Every granted fragment's reading window must avoid visiting
        // disk 2 before interval 6.
        let g = s
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                4,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 16,
                    max_delay_intervals: 12,
                },
            )
            .unwrap();
        for (idx, &v) in g.virtual_disks.iter().enumerate() {
            let t = g.read_start[idx];
            assert!(
                !s.read_conflict(v, t, t + 4),
                "fragment {idx} on v{v} reads into the outage"
            );
        }
    }

    #[test]
    fn soft_outage_blocks_planning_but_not_hard_conflicts() {
        let mut s = sched(8, 1);
        s.add_outage(Outage {
            disk: 3,
            from: 0,
            until: 10,
            hard: false,
        });
        let v = s.frame().virtual_of(3, 0);
        assert!(s.read_conflict(v, 0, 4));
        assert!(!s.hard_read_conflict(v, 0, 4));
    }

    #[test]
    fn parity_reconstruction_admits_through_hard_outage() {
        let mut s = sched(12, 1);
        s.add_outage(Outage {
            disk: 5,
            from: 0,
            until: 20,
            hard: true,
        });
        // Without parity this exact admission is rejected (see
        // `outage_blocks_contiguous_admission_until_repair`). With one
        // parity fragment per 3 data fragments, the lost reads — v5 over
        // disk 5 at t=0 and t=12, v4 at t=1, v6 at t=11 — are each the
        // only loss in their interval, so the group reconstructs them with
        // one companion (the virtual disk over the parity home, disk 7).
        s.set_parity_group(Some(3));
        let g = s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        assert_eq!(g.virtual_disks, vec![4, 5, 6]);
        assert_eq!(g.delivery_start, 0);
        assert_eq!(g.buffer_fragments, 0);
        assert_eq!(g.reconstructed_intervals, 4);
        assert_eq!(g.parity_companions, vec![7]);
        // The companion is committed through the reading window like any
        // granted disk.
        assert!(!s.is_free(7, 12));
        assert!(s.is_free(7, 13));
    }

    #[test]
    fn two_losses_in_one_group_interval_reject_reconstruction() {
        let mut s = sched(12, 1);
        for disk in [5, 6] {
            s.add_outage(Outage {
                disk,
                from: 0,
                until: 20,
                hard: true,
            });
        }
        s.set_parity_group(Some(3));
        // At t=0, fragments 1 and 2 (v5 over disk 5, v6 over disk 6) are
        // both lost: one parity fragment cannot cover two unknowns.
        assert!(s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .is_err());
    }

    #[test]
    fn busy_companion_rejects_reconstruction() {
        let mut s = sched(12, 1);
        s.add_outage(Outage {
            disk: 5,
            from: 0,
            until: 20,
            hard: true,
        });
        s.set_parity_group(Some(3));
        s.set_free_from(7, 50); // the group's parity companion
        assert!(s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .is_err());
    }

    #[test]
    fn soft_episode_still_rejects_degraded_plans() {
        let mut s = sched(12, 1);
        s.add_outage(Outage {
            disk: 5,
            from: 0,
            until: 20,
            hard: true,
        });
        // Fragment 0's virtual disk reads through a slow episode on disk
        // 4 — a slow disk still has the data, so no reconstruction.
        s.add_outage(Outage {
            disk: 4,
            from: 0,
            until: 20,
            hard: false,
        });
        s.set_parity_group(Some(3));
        assert!(s
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .is_err());
    }

    #[test]
    fn fragmented_planner_falls_back_to_aligned_reconstruction() {
        // 13 subobjects >= the rotation period 12, so while disk 5 is down
        // EVERY virtual disk's reading window visits it — the clean
        // fragmented search has no candidate slot at all.
        let mut s = sched(12, 1);
        s.add_outage(Outage {
            disk: 5,
            from: 0,
            until: 100,
            hard: true,
        });
        let policy = AdmissionPolicy::Fragmented {
            max_buffer_fragments: 16,
            max_delay_intervals: 8,
        };
        assert!(s.try_admit(0, ObjectId(0), 4, 3, 13, policy).is_err());
        s.set_parity_group(Some(3));
        let g = s.try_admit(0, ObjectId(0), 4, 3, 13, policy).unwrap();
        assert_eq!(g.buffer_fragments, 0, "degraded plans are aligned");
        assert_eq!(g.read_start, vec![g.delivery_start; 3]);
        assert!(g.reconstructed_intervals > 0);
        assert_eq!(g.parity_companions.len(), 1);
    }

    #[test]
    fn parity_never_changes_clean_admissions() {
        // With no outages, a parity-armed scheduler grants exactly what
        // the parity-free one does.
        let policy = AdmissionPolicy::Fragmented {
            max_buffer_fragments: 8,
            max_delay_intervals: 4,
        };
        let mut base = sched(20, 1);
        let mut armed = sched(20, 1);
        armed.set_parity_group(Some(4));
        for t in 0..30u64 {
            for start in [0u32, 5, 10, 15] {
                let a = base.try_admit(t, ObjectId(start), start, 3, 7, policy);
                let b = armed.try_admit(t, ObjectId(start), start, 3, 7, policy);
                assert_eq!(a.is_ok(), b.is_ok());
                if let (Ok(ga), Ok(gb)) = (a, b) {
                    assert_eq!(ga, gb);
                    assert!(gb.parity_companions.is_empty());
                }
            }
        }
    }

    #[test]
    fn plan_then_commit_equals_try_admit() {
        // The split halves must compose to exactly the monolithic call:
        // same grants, same errors, same post-state.
        let policy = AdmissionPolicy::Fragmented {
            max_buffer_fragments: 8,
            max_delay_intervals: 4,
        };
        let mut mono = sched(20, 1);
        let mut split = sched(20, 1);
        for t in 0..30u64 {
            for start in [0u32, 5, 10, 15] {
                let a = mono.try_admit(t, ObjectId(start), start, 3, 7, policy);
                split.refresh_index();
                let b = split.plan(t, ObjectId(start), start, 3, 7, policy);
                if let Ok(g) = &b {
                    split.commit(t, g, 7);
                }
                assert_eq!(a, b);
            }
        }
        for v in 0..20 {
            assert_eq!(mono.free_from(v), split.free_from(v));
        }
    }

    #[test]
    fn version_changes_on_every_verdict_relevant_mutation() {
        let mut s = sched(12, 1);
        let v0 = s.version();
        s.try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        let v1 = s.version();
        assert_ne!(v0, v1, "a commit must bump the version");
        // A rejection plans without mutating.
        assert!(s
            .try_admit(0, ObjectId(1), 5, 3, 13, AdmissionPolicy::Contiguous)
            .is_err());
        assert_eq!(s.version(), v1, "a rejection must not bump the version");
        s.set_free_from(0, 9);
        assert_ne!(s.version(), v1);
        let v2 = s.version();
        s.add_outage(Outage {
            disk: 2,
            from: 0,
            until: 5,
            hard: true,
        });
        assert_ne!(s.version(), v2);
    }

    #[test]
    fn sharded_index_refresh_matches_serial() {
        for shards in [1usize, 2, 3, 5, 8] {
            let mut serial = sched(37, 3);
            let mut sharded = sched(37, 3);
            for v in 0..37u32 {
                let horizon = u64::from((v * 7919) % 23);
                serial.set_free_from(v, horizon);
                sharded.set_free_from(v, horizon);
            }
            serial.refresh_index();
            sharded.refresh_index_sharded(shards, |parts| {
                for part in parts.iter_mut() {
                    part.sort_unstable();
                }
            });
            for t in 0..25u64 {
                assert_eq!(serial.free_count(t), sharded.free_count(t), "t={t}");
            }
            for m in 0..=38u32 {
                assert_eq!(serial.earliest_free(m), sharded.earliest_free(m), "m={m}");
            }
        }
    }

    #[test]
    fn stale_index_fallbacks_are_exact() {
        // `free_count` / `earliest_free` on a dirty index must agree with
        // the refreshed answers.
        let mut s = sched(16, 1);
        for v in 0..16u32 {
            s.set_free_from(v, u64::from((v * 31) % 11));
        }
        let dirty_counts: Vec<u32> = (0..12).map(|t| s.free_count(t)).collect();
        let dirty_earliest: Vec<Option<u64>> = (0..=17).map(|m| s.earliest_free(m)).collect();
        s.refresh_index();
        let clean_counts: Vec<u32> = (0..12).map(|t| s.free_count(t)).collect();
        let clean_earliest: Vec<Option<u64>> = (0..=17).map(|m| s.earliest_free(m)).collect();
        assert_eq!(dirty_counts, clean_counts);
        assert_eq!(dirty_earliest, clean_earliest);
    }

    #[test]
    fn stationary_frame_contiguous_only_same_disks() {
        // k = D (virtual replication): virtual == physical forever.
        let mut s = sched(10, 10);
        let g = s
            .try_admit(0, ObjectId(0), 2, 4, 50, AdmissionPolicy::Contiguous)
            .unwrap();
        assert_eq!(g.virtual_disks, vec![2, 3, 4, 5]);
        // The same disks stay busy for the whole 50 intervals; a second
        // request for the same object start must wait.
        assert!(s
            .try_admit(10, ObjectId(1), 2, 4, 50, AdmissionPolicy::Contiguous)
            .is_err());
        assert!(s
            .try_admit(50, ObjectId(1), 2, 4, 50, AdmissionPolicy::Contiguous)
            .is_ok());
    }
}
