//! Media types, object specifications, and the derived quantities of
//! Table 1 / Table 2.

use serde::{Deserialize, Serialize};
use ss_types::{Bandwidth, Bytes, Error, ObjectId, Result, SimDuration};

/// A media type: a name and the constant bandwidth its display consumes
/// (§3 assumption: "each object has a constant bandwidth requirement").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediaType {
    /// Human-readable name ("NTSC video", "CD audio", ...).
    pub name: String,
    /// `B_display` for objects of this type.
    pub display_bandwidth: Bandwidth,
}

impl MediaType {
    /// Creates a media type.
    pub fn new(name: impl Into<String>, display_bandwidth: Bandwidth) -> Self {
        MediaType {
            name: name.into(),
            display_bandwidth,
        }
    }

    /// "Network-quality" NTSC video, ≈45 mbps (§1).
    pub fn ntsc() -> Self {
        Self::new("NTSC video", Bandwidth::mbps(45))
    }

    /// CCIR Recommendation 601 video, 216 mbps (§1).
    pub fn ccir601() -> Self {
        Self::new("CCIR-601 video", Bandwidth::mbps(216))
    }

    /// HDTV video, ≈800 mbps (§1).
    pub fn hdtv() -> Self {
        Self::new("HDTV video", Bandwidth::mbps(800))
    }

    /// The single media type of the §4 simulation: 100 mbps.
    pub fn table3() -> Self {
        Self::new("simulated video (Table 3)", Bandwidth::mbps(100))
    }

    /// The degree of declustering for this media type given the effective
    /// per-disk bandwidth: `M = ceil(B_display / B_disk)` (Table 1).
    pub fn degree_of_declustering(&self, b_disk: Bandwidth) -> u32 {
        u32::try_from(self.display_bandwidth.div_ceil(b_disk)).expect("absurd declustering degree")
    }
}

/// One object in the database: identity, media type, and length in
/// subobjects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    /// The object's identity.
    pub id: ObjectId,
    /// Its media type (determines `B_display` and hence `M_X`).
    pub media: MediaType,
    /// Number of subobjects (stripes) the object is cut into.
    pub subobjects: u32,
}

impl ObjectSpec {
    /// Creates an object specification.
    pub fn new(id: ObjectId, media: MediaType, subobjects: u32) -> Self {
        ObjectSpec {
            id,
            media,
            subobjects,
        }
    }

    /// `M_X`, the number of disks each subobject is declustered across.
    pub fn degree(&self, b_disk: Bandwidth) -> u32 {
        self.media.degree_of_declustering(b_disk)
    }

    /// Size of one subobject: `M_X × size(fragment)` (Table 2).
    pub fn subobject_size(&self, b_disk: Bandwidth, fragment: Bytes) -> Bytes {
        fragment * u64::from(self.degree(b_disk))
    }

    /// Total object size.
    pub fn size(&self, b_disk: Bandwidth, fragment: Bytes) -> Bytes {
        self.subobject_size(b_disk, fragment) * u64::from(self.subobjects)
    }

    /// Total display (playback) time at the media rate.
    pub fn display_time(&self, b_disk: Bandwidth, fragment: Bytes) -> SimDuration {
        self.size(b_disk, fragment)
            .transfer_time(self.media.display_bandwidth)
    }

    /// Display time of one subobject — the paper's **time interval** when
    /// the system is configured so the cluster service time matches it.
    pub fn interval(&self, b_disk: Bandwidth, fragment: Bytes) -> SimDuration {
        self.subobject_size(b_disk, fragment)
            .transfer_time(self.media.display_bandwidth)
    }
}

/// The database catalog: a dense, immutable set of object specifications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectCatalog {
    objects: Vec<ObjectSpec>,
}

impl ObjectCatalog {
    /// Builds a catalog; object ids must be dense `0..n` in order (so they
    /// can index the backing vector).
    pub fn new(objects: Vec<ObjectSpec>) -> Result<Self> {
        for (i, o) in objects.iter().enumerate() {
            if o.id.index() != i {
                return Err(Error::InvalidConfig {
                    reason: format!("object ids must be dense: found {} at position {i}", o.id),
                });
            }
            if o.subobjects == 0 {
                return Err(Error::InvalidConfig {
                    reason: format!("object {} has zero subobjects", o.id),
                });
            }
            if o.media.display_bandwidth.is_zero() {
                return Err(Error::InvalidConfig {
                    reason: format!("object {} has zero display bandwidth", o.id),
                });
            }
        }
        Ok(ObjectCatalog { objects })
    }

    /// A homogeneous catalog of `n` identical objects (the §4 database:
    /// 2000 objects × 3000 subobjects of the Table 3 media type).
    pub fn homogeneous(n: u32, media: MediaType, subobjects: u32) -> Self {
        let objects = (0..n)
            .map(|i| ObjectSpec::new(ObjectId(i), media.clone(), subobjects))
            .collect();
        ObjectCatalog::new(objects).expect("homogeneous catalog is always valid")
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True iff the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Result<&ObjectSpec> {
        self.objects.get(id.index()).ok_or(Error::UnknownObject(id))
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = &ObjectSpec> {
        self.objects.iter()
    }

    /// Total database size.
    pub fn total_size(&self, b_disk: Bandwidth, fragment: Bytes) -> Bytes {
        self.objects.iter().map(|o| o.size(b_disk, fragment)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B_DISK: Bandwidth = Bandwidth::mbps(20);
    const CYL: Bytes = Bytes::new(1_512_000);

    #[test]
    fn degrees_match_paper_examples() {
        assert_eq!(MediaType::ntsc().degree_of_declustering(B_DISK), 3);
        assert_eq!(MediaType::ccir601().degree_of_declustering(B_DISK), 11);
        assert_eq!(MediaType::hdtv().degree_of_declustering(B_DISK), 40);
        assert_eq!(MediaType::table3().degree_of_declustering(B_DISK), 5);
        // §3.1: Y at 120 mbps → 6, Z at 60 mbps → 3.
        let y = MediaType::new("Y", Bandwidth::mbps(120));
        let z = MediaType::new("Z", Bandwidth::mbps(60));
        assert_eq!(y.degree_of_declustering(B_DISK), 6);
        assert_eq!(z.degree_of_declustering(B_DISK), 3);
    }

    #[test]
    fn table3_object_dimensions() {
        let o = ObjectSpec::new(ObjectId(0), MediaType::table3(), 3000);
        assert_eq!(o.degree(B_DISK), 5);
        assert_eq!(o.subobject_size(B_DISK, CYL), Bytes::new(7_560_000));
        assert_eq!(o.size(B_DISK, CYL), Bytes::new(22_680_000_000));
        // Paper: display time 1814 s (30 min 14 s).
        let t = o.display_time(B_DISK, CYL).as_secs_f64();
        assert!((t - 1814.4).abs() < 0.1, "display time {t}");
        // Time interval = 0.6048 s.
        let iv = o.interval(B_DISK, CYL).as_secs_f64();
        assert!((iv - 0.6048).abs() < 1e-6, "interval {iv}");
    }

    #[test]
    fn interval_is_independent_of_media_rate_given_same_fragment() {
        // §3.2: "the duration of a time interval is constant for all
        // multimedia objects" because the fragment size is global.
        // An M=4 object at 80 mbps and an M=2 object at 40 mbps share the
        // same interval.
        let hi = ObjectSpec::new(ObjectId(0), MediaType::new("Y", Bandwidth::mbps(80)), 10);
        let lo = ObjectSpec::new(ObjectId(1), MediaType::new("Z", Bandwidth::mbps(40)), 10);
        assert_eq!(hi.interval(B_DISK, CYL), lo.interval(B_DISK, CYL));
        // But the subobject sizes differ by the bandwidth ratio.
        assert_eq!(
            hi.subobject_size(B_DISK, CYL),
            lo.subobject_size(B_DISK, CYL) * 2
        );
    }

    #[test]
    fn catalog_table3_statistics() {
        let cat = ObjectCatalog::homogeneous(2000, MediaType::table3(), 3000);
        assert_eq!(cat.len(), 2000);
        // Database ≈ 45.36 TB ≈ 10 × the 1000-disk farm capacity (§4.1).
        let db = cat.total_size(B_DISK, CYL);
        let farm = Bytes::new(4_536_000_000) * 1000;
        assert_eq!(db.as_u64(), farm.as_u64() * 10);
    }

    #[test]
    fn catalog_rejects_sparse_ids_and_degenerate_objects() {
        let m = MediaType::table3();
        let sparse = vec![ObjectSpec::new(ObjectId(1), m.clone(), 10)];
        assert!(ObjectCatalog::new(sparse).is_err());
        let empty_obj = vec![ObjectSpec::new(ObjectId(0), m.clone(), 0)];
        assert!(ObjectCatalog::new(empty_obj).is_err());
        let zero_bw = vec![ObjectSpec::new(
            ObjectId(0),
            MediaType::new("null", Bandwidth::ZERO),
            10,
        )];
        assert!(ObjectCatalog::new(zero_bw).is_err());
    }

    #[test]
    fn catalog_lookup() {
        let cat = ObjectCatalog::homogeneous(3, MediaType::table3(), 5);
        assert!(cat.get(ObjectId(2)).is_ok());
        assert_eq!(cat.get(ObjectId(3)), Err(Error::UnknownObject(ObjectId(3))));
        assert!(!cat.is_empty());
        assert_eq!(cat.iter().count(), 3);
    }
}
