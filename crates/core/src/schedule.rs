//! Delivery schedules: materialising an [`AdmissionGrant`] into the full
//! per-interval timeline of disk reads and network outputs, and machine-
//! checking **hiccup-freedom** — the paper's central service guarantee.
//!
//! A schedule is hiccup-free iff, for every interval `delivery_start + j`
//! (`j = 0 .. n−1`), *all* `M` fragments of subobject `j` are output in
//! that interval, and every fragment read happens on the physical disk
//! that actually stores it (the rotating frame must align with the data).

use crate::admission::AdmissionGrant;
use crate::algorithms::FragmentRef;
use crate::frame::VirtualFrame;
use crate::placement::StripingLayout;
use serde::{Deserialize, Serialize};
use ss_types::{DiskId, Error, Result};

/// One scheduled disk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledRead {
    /// Global interval of the read.
    pub interval: u64,
    /// The physical disk performing it.
    pub disk: DiskId,
    /// The virtual disk (process) it belongs to.
    pub virtual_disk: u32,
    /// The fragment read.
    pub fragment: FragmentRef,
}

/// One scheduled network output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledOutput {
    /// Global interval of the output.
    pub interval: u64,
    /// The fragment delivered.
    pub fragment: FragmentRef,
    /// True if delivered straight from disk (pipelined); false if from a
    /// buffer filled in an earlier interval.
    pub from_buffer: bool,
}

/// The complete timeline of one display.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeliverySchedule {
    /// The grant this schedule realises.
    pub grant: AdmissionGrant,
    /// Every read, ordered by interval.
    pub reads: Vec<ScheduledRead>,
    /// Every output, ordered by interval.
    pub outputs: Vec<ScheduledOutput>,
    degree: u32,
    subobjects: u32,
}

impl DeliverySchedule {
    /// Expands `grant` for an object laid out as `layout` under `frame`.
    /// Panics if the grant's shape does not match the layout (caller
    /// error).
    pub fn from_grant(
        grant: &AdmissionGrant,
        layout: &StripingLayout,
        frame: &VirtualFrame,
    ) -> Self {
        assert_eq!(
            grant.virtual_disks.len(),
            layout.degree as usize,
            "grant degree must match layout"
        );
        let n = layout.subobjects;
        let mut reads = Vec::with_capacity((n as usize) * layout.degree as usize);
        let mut outputs = Vec::with_capacity(reads.capacity());
        for (i, (&v, &t0)) in grant
            .virtual_disks
            .iter()
            .zip(&grant.read_start)
            .enumerate()
        {
            let frag = i as u32;
            for j in 0..n {
                let t = t0 + u64::from(j);
                reads.push(ScheduledRead {
                    interval: t,
                    disk: DiskId(frame.physical(v, t)),
                    virtual_disk: v,
                    fragment: FragmentRef::new(j, frag),
                });
                let out_t = grant.delivery_start + u64::from(j);
                outputs.push(ScheduledOutput {
                    interval: out_t,
                    fragment: FragmentRef::new(j, frag),
                    from_buffer: out_t != t,
                });
            }
        }
        reads.sort_unstable_by_key(|r| (r.interval, r.fragment.frag));
        outputs.sort_unstable_by_key(|o| (o.interval, o.fragment.frag));
        DeliverySchedule {
            grant: grant.clone(),
            reads,
            outputs,
            degree: layout.degree,
            subobjects: n,
        }
    }

    /// Verifies hiccup-freedom against the layout:
    ///
    /// 1. every read's physical disk is the disk that stores the fragment;
    /// 2. every interval `delivery_start + j` outputs all `M` fragments of
    ///    subobject `j` and nothing else;
    /// 3. no fragment is output before it is read.
    pub fn verify(&self, layout: &StripingLayout) -> Result<()> {
        let fail = |reason: String| Err(Error::InvalidState { reason });
        // 1. Read alignment.
        for r in &self.reads {
            let stored = layout.fragment_disk(r.fragment.sub, r.fragment.frag);
            if stored != r.disk {
                return fail(format!(
                    "misaligned read: X{}.{} stored on {stored}, read from {}",
                    r.fragment.sub, r.fragment.frag, r.disk
                ));
            }
        }
        // 2. Synchronized complete delivery per interval.
        for j in 0..self.subobjects {
            let t = self.grant.delivery_start + u64::from(j);
            let mut seen = vec![false; self.degree as usize];
            for o in self.outputs.iter().filter(|o| o.interval == t) {
                if o.fragment.sub != j {
                    return fail(format!(
                        "interval {t} outputs subobject {} during subobject {j}'s slot",
                        o.fragment.sub
                    ));
                }
                seen[o.fragment.frag as usize] = true;
            }
            if let Some(missing) = seen.iter().position(|&s| !s) {
                return fail(format!(
                    "hiccup: interval {t} misses fragment {missing} of subobject {j}"
                ));
            }
        }
        // 3. Causality: read-before-output.
        for o in &self.outputs {
            let read = self
                .reads
                .iter()
                .find(|r| r.fragment == o.fragment)
                .expect("every output has a read");
            if read.interval > o.interval {
                return fail(format!(
                    "fragment X{}.{} output at {} before its read at {}",
                    o.fragment.sub, o.fragment.frag, o.interval, read.interval
                ));
            }
        }
        Ok(())
    }

    /// The reads scheduled in `interval`.
    pub fn reads_at(&self, interval: u64) -> impl Iterator<Item = &ScheduledRead> {
        self.reads.iter().filter(move |r| r.interval == interval)
    }

    /// Peak number of buffered fragments over the display's lifetime
    /// (equals the grant's buffer bill in steady state).
    pub fn peak_buffered(&self) -> u64 {
        // Fragment i is buffered from its read to its output; with
        // constant per-fragment offsets the peak equals the sum of
        // offsets once all processes are in steady state.
        self.grant.buffer_fragments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionPolicy, IntervalScheduler};
    use ss_types::ObjectId;

    fn setup(d: u32, k: u32) -> (IntervalScheduler, VirtualFrame) {
        let frame = VirtualFrame::new(d, k);
        (IntervalScheduler::new(frame), frame)
    }

    #[test]
    fn contiguous_schedule_verifies() {
        let (mut sched, frame) = setup(12, 1);
        let layout = StripingLayout::new(ObjectId(0), 4, 3, 13, 12, 1);
        let grant = sched
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        let s = DeliverySchedule::from_grant(&grant, &layout, &frame);
        s.verify(&layout).unwrap();
        assert_eq!(s.reads.len(), 39);
        assert_eq!(s.outputs.len(), 39);
        // Contiguous: nothing comes from buffers.
        assert!(s.outputs.iter().all(|o| !o.from_buffer));
        assert_eq!(s.peak_buffered(), 0);
        // First interval reads X0.* from disks 4,5,6.
        let first: Vec<DiskId> = s.reads_at(0).map(|r| r.disk).collect();
        assert_eq!(first, vec![DiskId(4), DiskId(5), DiskId(6)]);
    }

    #[test]
    fn fragmented_schedule_verifies_with_buffering() {
        // The Figure 6 scenario.
        let (mut sched, frame) = setup(8, 1);
        for v in [0u32, 2, 3, 4, 5, 7] {
            sched
                .try_admit(
                    0,
                    ObjectId(100 + v),
                    v,
                    1,
                    1000,
                    AdmissionPolicy::Contiguous,
                )
                .unwrap();
        }
        let layout = StripingLayout::new(ObjectId(0), 0, 2, 10, 8, 1);
        let grant = sched
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 16,
                    max_delay_intervals: 8,
                },
            )
            .unwrap();
        let s = DeliverySchedule::from_grant(&grant, &layout, &frame);
        s.verify(&layout).unwrap();
        // Fragment 1 outputs all come from buffers; fragment 0 pipelines.
        for o in &s.outputs {
            assert_eq!(o.from_buffer, o.fragment.frag == 1, "{o:?}");
        }
        assert_eq!(s.peak_buffered(), 2);
    }

    #[test]
    fn verify_catches_misaligned_layout() {
        let (mut sched, frame) = setup(12, 1);
        let grant = sched
            .try_admit(0, ObjectId(0), 4, 3, 13, AdmissionPolicy::Contiguous)
            .unwrap();
        // Wrong layout: object actually starts on disk 5.
        let wrong = StripingLayout::new(ObjectId(0), 5, 3, 13, 12, 1);
        let s = DeliverySchedule::from_grant(&grant, &wrong, &frame);
        assert!(s.verify(&wrong).is_err());
    }

    #[test]
    fn schedules_work_for_simple_striping_stride() {
        let (mut sched, frame) = setup(9, 3);
        let layout = StripingLayout::new(ObjectId(0), 0, 3, 9, 9, 3);
        let grant = sched
            .try_admit(2, ObjectId(0), 0, 3, 9, AdmissionPolicy::Contiguous)
            .unwrap();
        let s = DeliverySchedule::from_grant(&grant, &layout, &frame);
        s.verify(&layout).unwrap();
        // At interval 2+j the display reads subobject j from cluster j mod 3.
        for j in 0..9u32 {
            let disks: Vec<u32> = s.reads_at(2 + u64::from(j)).map(|r| r.disk.0).collect();
            assert_eq!(disks, vec![(3 * j) % 9, (3 * j + 1) % 9, (3 * j + 2) % 9]);
        }
    }
}
