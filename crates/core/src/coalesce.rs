//! System-side **dynamic coalescing** (§3.2.1, Figure 6's second act).
//!
//! A time-fragmented display reads fragment `i` with a virtual disk that
//! runs `wᵢ = T₀ − Tᵢ` intervals ahead of delivery, buffering `wᵢ`
//! fragments forever. When intervening disks free up, the system can hand
//! fragment `i` over to a *closer* virtual disk: the old disk finishes the
//! subobjects it already owes, the new disk picks up from the handover
//! point with a smaller (ideally zero) offset, and the buffer bill drops.
//! The per-disk protocol of the handover is the paper's Algorithm 2
//! ([`crate::algorithms::WriteThread`]); this module plans and commits the
//! handovers against the [`IntervalScheduler`]'s occupancy.

use crate::admission::{AdmissionGrant, IntervalScheduler};
use serde::{Deserialize, Serialize};
use ss_types::ObjectId;

/// The live scheduling state of one (possibly fragmented) display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveFragmentedDisplay {
    /// The displayed object.
    pub object: ObjectId,
    /// Physical disk of `X_{0.0}`.
    pub start_disk: u32,
    /// Degree of declustering.
    pub degree: u32,
    /// Number of subobjects.
    pub subobjects: u32,
    /// Current virtual disk per fragment (mutated by coalescing).
    pub virtual_disks: Vec<u32>,
    /// Current read-start base per fragment: fragment `i` of subobject
    /// `s` is read at interval `read_start[i] + s` (mutated by
    /// coalescing — a handover *raises* the lagging fragment's base).
    pub read_start: Vec<u64>,
    /// Delivery base: subobject `s` is output at `delivery_start + s`
    /// (never changes; the viewer must not notice the coalesce).
    pub delivery_start: u64,
}

impl ActiveFragmentedDisplay {
    /// Builds the live state from a fresh grant.
    pub fn from_grant(grant: &AdmissionGrant, start_disk: u32, subobjects: u32) -> Self {
        ActiveFragmentedDisplay {
            object: grant.object,
            start_disk,
            degree: grant.virtual_disks.len() as u32,
            subobjects,
            virtual_disks: grant.virtual_disks.clone(),
            read_start: grant.read_start.clone(),
            delivery_start: grant.delivery_start,
        }
    }

    /// Per-fragment buffering offsets `wᵢ = T₀ − Tᵢ`.
    pub fn offsets(&self) -> Vec<u64> {
        self.read_start
            .iter()
            .map(|&t| self.delivery_start - t)
            .collect()
    }

    /// The display's current total buffer bill (fragments).
    pub fn buffer_total(&self) -> u64 {
        self.offsets().iter().sum()
    }

    /// One past the last delivery interval.
    pub fn delivery_end(&self) -> u64 {
        self.delivery_start + u64::from(self.subobjects)
    }
}

/// A committed fragment read that falls inside a hard outage window: the
/// data under the head at that interval is on a failed disk, so the read
/// is lost and the display hiccups unless the fragment is rescued first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostRead {
    /// The fragment whose read is lost.
    pub frag: u32,
    /// The subobject that would have been read.
    pub subobject: u32,
    /// The interval of the lost read.
    pub at: u64,
    /// The failed physical disk under the head at that interval.
    pub disk: u32,
}

/// A planned handover of one fragment to a closer virtual disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescePlan {
    /// The fragment index being handed over.
    pub frag: u32,
    /// The virtual disk currently serving it.
    pub old_disk: u32,
    /// The virtual disk taking over.
    pub new_disk: u32,
    /// First subobject the new disk reads.
    pub handover_sub: u32,
    /// The new read base `T'ᵢ` (new disk reads subobject `s` at
    /// `T'ᵢ + s`).
    pub new_read_start: u64,
    /// Buffer fragments saved once the old disk's backlog drains:
    /// `old offset − new offset`.
    pub buffer_saving: u64,
}

impl IntervalScheduler {
    /// Looks for the best handover of one fragment of `display` at
    /// interval `now`: the plan that minimises the remaining offset
    /// (ties: lowest fragment index). Returns `None` when the display is
    /// already fully coalesced or no suitable free disk exists.
    ///
    /// A fragment is only eligible if its old disk carries no *later*
    /// commitment (the scalar occupancy can then be shortened safely).
    pub fn plan_coalesce(
        &self,
        display: &ActiveFragmentedDisplay,
        now: u64,
    ) -> Option<CoalescePlan> {
        let disks = self.frame().disks();
        let k = self.frame().stride();
        if k == 0 {
            return None; // stationary frame: nothing rotates, nothing coalesces
        }
        let n = u64::from(display.subobjects);
        let mut best: Option<CoalescePlan> = None;
        for (i, (&z_old, &t_old)) in display
            .virtual_disks
            .iter()
            .zip(&display.read_start)
            .enumerate()
        {
            let offset = display.delivery_start - t_old;
            if offset == 0 {
                continue; // already pipelined directly
            }
            // The old disk must have exactly this display's tail committed.
            if self.free_from(z_old) != t_old + n {
                continue;
            }
            let p = (display.start_disk + i as u32) % disks;
            // Try new bases from tightest (delivery_start ⇒ zero offset)
            // downwards; the first feasible is the best for this fragment.
            for t_new in (t_old + 1..=display.delivery_start).rev() {
                // The disk reading fragment i of subobject s at interval
                // t_new + s sits over physical disk p + s·k + i there, so
                // its virtual index is fixed: virtual_of(p, t_new).
                let z_new = self.frame().virtual_of(p, t_new);
                if display.virtual_disks.contains(&z_new) {
                    continue; // already working for this display
                }
                // Handover point: the coalesce takes effect this
                // interval — the old disk's read for `now` is cancelled
                // and the new disk reads that subobject when it aligns
                // (paper timing: the Figure 6 handover at interval 5 has
                // the new disk read X5.1 directly at interval 7). The new
                // disk must also have freed by its first read.
                let s_min = now
                    .saturating_sub(t_old)
                    .max(self.free_from(z_new).saturating_sub(t_new));
                if s_min >= n {
                    continue; // nothing left for the new disk to read
                }
                // Under fault injection the taker's remaining reads must
                // clear every known unavailability window, and the old
                // disk's pre-handover tail must clear every hard one.
                if self.has_outages()
                    && (self.read_conflict(z_new, t_new + s_min, t_new + n)
                        || (t_old + s_min > now
                            && self.hard_read_conflict(z_old, now, t_old + s_min)))
                {
                    continue;
                }
                let saving = offset - (display.delivery_start - t_new);
                if saving == 0 {
                    continue;
                }
                let plan = CoalescePlan {
                    frag: i as u32,
                    old_disk: z_old,
                    new_disk: z_new,
                    handover_sub: u32::try_from(s_min).expect("subobject fits u32"),
                    new_read_start: t_new,
                    buffer_saving: saving,
                };
                let better = match &best {
                    None => true,
                    Some(b) => plan.buffer_saving > b.buffer_saving,
                };
                if better {
                    best = Some(plan);
                }
                break; // lower t_new only saves less for this fragment
            }
        }
        best
    }

    /// Commits `plan`: shortens the old disk's occupancy to the handover
    /// point and books the new disk through the remaining reads, updating
    /// `display`'s live state. Panics if the plan no longer matches the
    /// occupancy (plans must be applied at the interval they were made).
    pub fn apply_coalesce(&mut self, display: &mut ActiveFragmentedDisplay, plan: &CoalescePlan) {
        let i = plan.frag as usize;
        let n = u64::from(display.subobjects);
        assert_eq!(display.virtual_disks[i], plan.old_disk, "stale plan");
        let t_old = display.read_start[i];
        assert_eq!(
            self.free_from(plan.old_disk),
            t_old + n,
            "old disk gained a later commitment"
        );
        assert!(
            self.free_from(plan.new_disk) <= plan.new_read_start + u64::from(plan.handover_sub),
            "new disk is no longer free"
        );
        // Old disk reads subobjects [.., handover_sub) and then frees.
        self.set_free_from(plan.old_disk, t_old + u64::from(plan.handover_sub));
        // New disk reads [handover_sub, n).
        self.set_free_from(plan.new_disk, plan.new_read_start + n);
        display.virtual_disks[i] = plan.new_disk;
        display.read_start[i] = plan.new_read_start;
        ss_obs::obs!(ss_obs::Event::ReadMove {
            object: display.object.0,
            frag: plan.frag,
            old_vdisk: plan.old_disk,
            new_vdisk: plan.new_disk,
            old_base: t_old,
            new_base: plan.new_read_start,
            handover: u64::from(plan.handover_sub),
        });
    }

    /// Enumerates `display`'s committed reads from interval `now` onward
    /// that land inside a **hard** outage window — these reads cannot
    /// complete as planned. A read is one (fragment, subobject) pair:
    /// fragment `i`'s disk visits physical disk `homeᵢ(s)` at interval
    /// `read_start[i] + s`, and alignments with a given physical disk
    /// recur every `D / gcd(D, k)` intervals.
    pub fn lost_reads(&self, display: &ActiveFragmentedDisplay, now: u64) -> Vec<LostRead> {
        let mut out = Vec::new();
        if !self.has_outages() {
            return out;
        }
        let d = self.frame().disks();
        let k = self.frame().stride();
        let n = u64::from(display.subobjects);
        let period = if k == 0 {
            1
        } else {
            u64::from(d) / crate::frame::gcd(u64::from(d), u64::from(k))
        };
        for (i, (&v, &t_base)) in display
            .virtual_disks
            .iter()
            .zip(&display.read_start)
            .enumerate()
        {
            let start = t_base.max(now);
            let end = t_base + n;
            for o in self.outages().iter().filter(|o| o.hard) {
                let lo = start.max(o.from);
                let hi = end.min(o.until);
                if lo >= hi {
                    continue;
                }
                let Some(mut t) = self.frame().next_alignment(v, o.disk, lo) else {
                    continue;
                };
                while t < hi {
                    out.push(LostRead {
                        frag: i as u32,
                        subobject: u32::try_from(t - t_base).expect("subobject fits u32"),
                        at: t,
                        disk: o.disk,
                    });
                    t += period;
                }
            }
        }
        out.sort_by_key(|r| (r.at, r.frag));
        out
    }

    /// Plans the rescue of one conflicted fragment: a coalesce-direction
    /// handover (the base moves *later*, toward `delivery_start`, so
    /// buffers are released, never added) chosen so that **no** remaining
    /// read of the display's fragment — on either the taker or the old
    /// disk's pre-handover tail — falls inside a known outage window.
    /// Rescue is all-or-nothing: a candidate that still loses a read is
    /// rejected, so a rescued fragment never misses a delivery deadline.
    ///
    /// Contiguous fragments (`read_start == delivery_start`) have no later
    /// base to move to and are never rescuable — the paper's direct
    /// pipelining has zero slack, which is exactly why the degraded-mode
    /// report distinguishes rescued from hiccuping streams.
    pub fn plan_rescue(
        &self,
        display: &ActiveFragmentedDisplay,
        frag: u32,
        now: u64,
    ) -> Option<CoalescePlan> {
        let disks = self.frame().disks();
        let k = self.frame().stride();
        if k == 0 {
            return None; // stationary frame: a fragment is bound to its disk
        }
        let i = frag as usize;
        let z_old = display.virtual_disks[i];
        let t_old = display.read_start[i];
        let n = u64::from(display.subobjects);
        // The old disk must carry exactly this display's tail, or its
        // occupancy cannot be shortened at the handover point.
        if self.free_from(z_old) != t_old + n {
            return None;
        }
        let p = (display.start_disk + frag) % disks;
        for t_new in (t_old + 1..=display.delivery_start).rev() {
            let z_new = self.frame().virtual_of(p, t_new);
            if display.virtual_disks.contains(&z_new) {
                continue;
            }
            let s_min = now
                .saturating_sub(t_old)
                .max(self.free_from(z_new).saturating_sub(t_new));
            if s_min >= n {
                continue;
            }
            // The taker's remaining reads must clear every outage window
            // (hard and slow — new placement avoids slow disks too).
            if self.read_conflict(z_new, t_new + s_min, t_new + n) {
                continue;
            }
            // If the taker frees late, the old disk keeps reading up to
            // the handover subobject; those residual reads must clear
            // every *hard* window or the rescue is not a rescue.
            if t_old + s_min > now && self.hard_read_conflict(z_old, now, t_old + s_min) {
                continue;
            }
            return Some(CoalescePlan {
                frag,
                old_disk: z_old,
                new_disk: z_new,
                handover_sub: u32::try_from(s_min).expect("subobject fits u32"),
                new_read_start: t_new,
                buffer_saving: t_new - t_old,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::frame::VirtualFrame;

    /// The Figure 6 farm: D = 8, k = 1, background displays on all but
    /// the slots over disks 1 and 6; X (M = 2) admitted fragmented.
    fn figure6() -> (IntervalScheduler, ActiveFragmentedDisplay) {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
        for v in [0u32, 2, 3, 4, 5, 7] {
            // The two slots *between* X's disks (virtual 7 and 0, walking
            // 6 → 7 → 0 → 1) are the paper's "intervening busy disks";
            // they complete at interval 5. The rest run long.
            let len = if v == 7 || v == 0 { 5 } else { 1000 };
            sched
                .try_admit(0, ObjectId(100 + v), v, 1, len, AdmissionPolicy::Contiguous)
                .unwrap();
        }
        let grant = sched
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 16,
                    max_delay_intervals: 8,
                },
            )
            .unwrap();
        let display = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        (sched, display)
    }

    #[test]
    fn figure6_state_before_coalescing() {
        let (_, d) = figure6();
        assert_eq!(d.virtual_disks, vec![6, 1]);
        assert_eq!(d.read_start, vec![2, 0]);
        assert_eq!(d.offsets(), vec![0, 2]);
        assert_eq!(d.buffer_total(), 2);
        assert_eq!(d.delivery_end(), 12);
    }

    #[test]
    fn coalesce_after_neighbours_free() {
        let (mut sched, mut d) = figure6();
        // Before interval 5 the intervening disks (2, 3) are busy: no
        // beneficial plan may use them...
        let early = sched.plan_coalesce(&d, 1);
        if let Some(p) = &early {
            assert!(p.new_disk != 2 && p.new_disk != 3, "{early:?}");
        }
        // At interval 5 the two intervening virtual disks free. Fragment
        // 1 (offset 2, served by v1) hands over to v7 — making X's disks
        // the adjacent pair (6, 7), exactly the paper's outcome.
        let plan = sched.plan_coalesce(&d, 5).expect("a handover exists");
        assert_eq!(plan.frag, 1);
        assert_eq!(plan.old_disk, 1);
        assert_eq!(plan.new_disk, 7);
        assert_eq!(plan.buffer_saving, 2); // down to direct pipelining
        assert_eq!(plan.new_read_start, d.delivery_start);
        // The paper's timeline: the new disk's first direct read is
        // X5.1 at interval 7 (= 2 + 5).
        assert_eq!(plan.handover_sub, 5);
        sched.apply_coalesce(&mut d, &plan);
        assert_eq!(d.offsets(), vec![0, 0]);
        assert_eq!(d.buffer_total(), 0);
        // Old disk freed early: it read subobjects 0..5 and lets go.
        assert_eq!(sched.free_from(plan.old_disk), 5);
        // New disk committed through the display's end.
        assert_eq!(sched.free_from(plan.new_disk), 12);
        // Nothing further to coalesce.
        assert!(sched.plan_coalesce(&d, 6).is_none());
    }

    #[test]
    fn coalesce_respects_later_commitments_on_old_disk() {
        let (mut sched, d) = figure6();
        // Give the old disk (v1) a later commitment right after X ends.
        sched.set_free_from(1, 20);
        assert!(sched.plan_coalesce(&d, 5).is_none());
    }

    #[test]
    fn contiguous_displays_have_nothing_to_coalesce() {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 3, 10, AdmissionPolicy::Contiguous)
            .unwrap();
        let d = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        assert_eq!(d.buffer_total(), 0);
        assert!(sched.plan_coalesce(&d, 3).is_none());
    }

    #[test]
    fn lost_reads_and_rescue_on_figure6() {
        use crate::admission::Outage;
        let (mut sched, mut d) = figure6();
        // X's fragment 1 is read by v1 at intervals 0..10, visiting
        // physical disk 1 + t each interval (k = 1). Fail disk 5 for
        // intervals [3, 9): v1 is over disk 5 at t = 4 — one lost read.
        sched.add_outage(Outage {
            disk: 5,
            from: 3,
            until: 9,
            hard: true,
        });
        // Both fragments visit disk 5 inside [3, 9): fragment 1 (v1 over
        // disk 1+t) at t = 4, fragment 0 (v6 over disk 6+t) at t = 7.
        let lost = sched.lost_reads(&d, 3);
        assert_eq!(
            lost,
            vec![
                LostRead {
                    frag: 1,
                    subobject: 4,
                    at: 4,
                    disk: 5,
                },
                LostRead {
                    frag: 0,
                    subobject: 5,
                    at: 7,
                    disk: 5,
                },
            ]
        );
        // Fragment 1 has offset 2: moving its base to delivery_start (2)
        // pushes the disk-5 visit to t = 2 + 4 = 6... still inside the
        // window, but the *taker* v7 visits disk 5 at interval... v7 over
        // p=1 at t=2, walking 1,2,3,... per interval: over disk 5 at
        // t = 6, inside [3, 9) — so the zero-offset rescue is rejected
        // and no feasible base exists (offset 1 puts the visit at t = 5).
        assert!(sched.plan_rescue(&d, 1, 3).is_none());
        // Shrink the window so the post-rescue visit clears it: with the
        // outage ending at interval 6, base 2 (taker v7 reads subobject s
        // at 2 + s, visiting disk 5 at t = 6 >= until) is clean.
        let (mut sched2, d2) = figure6();
        sched2.add_outage(Outage {
            disk: 5,
            from: 3,
            until: 6,
            hard: true,
        });
        assert_eq!(sched2.lost_reads(&d2, 3).len(), 1);
        let plan = sched2.plan_rescue(&d2, 1, 3).expect("rescue is feasible");
        assert_eq!(plan.frag, 1);
        assert_eq!(plan.new_read_start, 2);
        assert_eq!(plan.buffer_saving, 2);
        let mut d2 = d2;
        sched2.apply_coalesce(&mut d2, &plan);
        // The rescued display has no remaining conflicted reads.
        assert!(sched2.lost_reads(&d2, 3).is_empty());
        // Silence the unused-mut pair from the first scenario.
        let _ = (&mut sched, &mut d);
    }

    #[test]
    fn contiguous_fragments_are_never_rescuable() {
        use crate::admission::Outage;
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 2, 10, AdmissionPolicy::Contiguous)
            .unwrap();
        let d = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        sched.add_outage(Outage {
            disk: 4,
            from: 2,
            until: 8,
            hard: true,
        });
        let lost = sched.lost_reads(&d, 2);
        assert!(!lost.is_empty());
        for r in &lost {
            assert!(sched.plan_rescue(&d, r.frag, 2).is_none());
        }
    }

    #[test]
    fn stationary_frame_never_coalesces() {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 8));
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 2, 10, AdmissionPolicy::Contiguous)
            .unwrap();
        let d = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        assert!(sched.plan_coalesce(&d, 1).is_none());
    }
}
