//! System-side **dynamic coalescing** (§3.2.1, Figure 6's second act).
//!
//! A time-fragmented display reads fragment `i` with a virtual disk that
//! runs `wᵢ = T₀ − Tᵢ` intervals ahead of delivery, buffering `wᵢ`
//! fragments forever. When intervening disks free up, the system can hand
//! fragment `i` over to a *closer* virtual disk: the old disk finishes the
//! subobjects it already owes, the new disk picks up from the handover
//! point with a smaller (ideally zero) offset, and the buffer bill drops.
//! The per-disk protocol of the handover is the paper's Algorithm 2
//! ([`crate::algorithms::WriteThread`]); this module plans and commits the
//! handovers against the [`IntervalScheduler`]'s occupancy.

use crate::admission::{AdmissionGrant, IntervalScheduler};
use serde::{Deserialize, Serialize};
use ss_types::ObjectId;

/// The live scheduling state of one (possibly fragmented) display.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActiveFragmentedDisplay {
    /// The displayed object.
    pub object: ObjectId,
    /// Physical disk of `X_{0.0}`.
    pub start_disk: u32,
    /// Degree of declustering.
    pub degree: u32,
    /// Number of subobjects.
    pub subobjects: u32,
    /// Current virtual disk per fragment (mutated by coalescing).
    pub virtual_disks: Vec<u32>,
    /// Current read-start base per fragment: fragment `i` of subobject
    /// `s` is read at interval `read_start[i] + s` (mutated by
    /// coalescing — a handover *raises* the lagging fragment's base).
    pub read_start: Vec<u64>,
    /// Delivery base: subobject `s` is output at `delivery_start + s`
    /// (never changes; the viewer must not notice the coalesce).
    pub delivery_start: u64,
}

impl ActiveFragmentedDisplay {
    /// Builds the live state from a fresh grant.
    pub fn from_grant(grant: &AdmissionGrant, start_disk: u32, subobjects: u32) -> Self {
        ActiveFragmentedDisplay {
            object: grant.object,
            start_disk,
            degree: grant.virtual_disks.len() as u32,
            subobjects,
            virtual_disks: grant.virtual_disks.clone(),
            read_start: grant.read_start.clone(),
            delivery_start: grant.delivery_start,
        }
    }

    /// Per-fragment buffering offsets `wᵢ = T₀ − Tᵢ`.
    pub fn offsets(&self) -> Vec<u64> {
        self.read_start
            .iter()
            .map(|&t| self.delivery_start - t)
            .collect()
    }

    /// The display's current total buffer bill (fragments).
    pub fn buffer_total(&self) -> u64 {
        self.offsets().iter().sum()
    }

    /// One past the last delivery interval.
    pub fn delivery_end(&self) -> u64 {
        self.delivery_start + u64::from(self.subobjects)
    }
}

/// A planned handover of one fragment to a closer virtual disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescePlan {
    /// The fragment index being handed over.
    pub frag: u32,
    /// The virtual disk currently serving it.
    pub old_disk: u32,
    /// The virtual disk taking over.
    pub new_disk: u32,
    /// First subobject the new disk reads.
    pub handover_sub: u32,
    /// The new read base `T'ᵢ` (new disk reads subobject `s` at
    /// `T'ᵢ + s`).
    pub new_read_start: u64,
    /// Buffer fragments saved once the old disk's backlog drains:
    /// `old offset − new offset`.
    pub buffer_saving: u64,
}

impl IntervalScheduler {
    /// Looks for the best handover of one fragment of `display` at
    /// interval `now`: the plan that minimises the remaining offset
    /// (ties: lowest fragment index). Returns `None` when the display is
    /// already fully coalesced or no suitable free disk exists.
    ///
    /// A fragment is only eligible if its old disk carries no *later*
    /// commitment (the scalar occupancy can then be shortened safely).
    pub fn plan_coalesce(
        &self,
        display: &ActiveFragmentedDisplay,
        now: u64,
    ) -> Option<CoalescePlan> {
        let disks = self.frame().disks();
        let k = self.frame().stride();
        if k == 0 {
            return None; // stationary frame: nothing rotates, nothing coalesces
        }
        let n = u64::from(display.subobjects);
        let mut best: Option<CoalescePlan> = None;
        for (i, (&z_old, &t_old)) in display
            .virtual_disks
            .iter()
            .zip(&display.read_start)
            .enumerate()
        {
            let offset = display.delivery_start - t_old;
            if offset == 0 {
                continue; // already pipelined directly
            }
            // The old disk must have exactly this display's tail committed.
            if self.free_from(z_old) != t_old + n {
                continue;
            }
            let p = (display.start_disk + i as u32) % disks;
            // Try new bases from tightest (delivery_start ⇒ zero offset)
            // downwards; the first feasible is the best for this fragment.
            for t_new in (t_old + 1..=display.delivery_start).rev() {
                // The disk reading fragment i of subobject s at interval
                // t_new + s sits over physical disk p + s·k + i there, so
                // its virtual index is fixed: virtual_of(p, t_new).
                let z_new = self.frame().virtual_of(p, t_new);
                if display.virtual_disks.contains(&z_new) {
                    continue; // already working for this display
                }
                // Handover point: the coalesce takes effect this
                // interval — the old disk's read for `now` is cancelled
                // and the new disk reads that subobject when it aligns
                // (paper timing: the Figure 6 handover at interval 5 has
                // the new disk read X5.1 directly at interval 7). The new
                // disk must also have freed by its first read.
                let s_min = now
                    .saturating_sub(t_old)
                    .max(self.free_from(z_new).saturating_sub(t_new));
                if s_min >= n {
                    continue; // nothing left for the new disk to read
                }
                let saving = offset - (display.delivery_start - t_new);
                if saving == 0 {
                    continue;
                }
                let plan = CoalescePlan {
                    frag: i as u32,
                    old_disk: z_old,
                    new_disk: z_new,
                    handover_sub: u32::try_from(s_min).expect("subobject fits u32"),
                    new_read_start: t_new,
                    buffer_saving: saving,
                };
                let better = match &best {
                    None => true,
                    Some(b) => plan.buffer_saving > b.buffer_saving,
                };
                if better {
                    best = Some(plan);
                }
                break; // lower t_new only saves less for this fragment
            }
        }
        best
    }

    /// Commits `plan`: shortens the old disk's occupancy to the handover
    /// point and books the new disk through the remaining reads, updating
    /// `display`'s live state. Panics if the plan no longer matches the
    /// occupancy (plans must be applied at the interval they were made).
    pub fn apply_coalesce(&mut self, display: &mut ActiveFragmentedDisplay, plan: &CoalescePlan) {
        let i = plan.frag as usize;
        let n = u64::from(display.subobjects);
        assert_eq!(display.virtual_disks[i], plan.old_disk, "stale plan");
        let t_old = display.read_start[i];
        assert_eq!(
            self.free_from(plan.old_disk),
            t_old + n,
            "old disk gained a later commitment"
        );
        assert!(
            self.free_from(plan.new_disk) <= plan.new_read_start + u64::from(plan.handover_sub),
            "new disk is no longer free"
        );
        // Old disk reads subobjects [.., handover_sub) and then frees.
        self.set_free_from(plan.old_disk, t_old + u64::from(plan.handover_sub));
        // New disk reads [handover_sub, n).
        self.set_free_from(plan.new_disk, plan.new_read_start + n);
        display.virtual_disks[i] = plan.new_disk;
        display.read_start[i] = plan.new_read_start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::frame::VirtualFrame;

    /// The Figure 6 farm: D = 8, k = 1, background displays on all but
    /// the slots over disks 1 and 6; X (M = 2) admitted fragmented.
    fn figure6() -> (IntervalScheduler, ActiveFragmentedDisplay) {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
        for v in [0u32, 2, 3, 4, 5, 7] {
            // The two slots *between* X's disks (virtual 7 and 0, walking
            // 6 → 7 → 0 → 1) are the paper's "intervening busy disks";
            // they complete at interval 5. The rest run long.
            let len = if v == 7 || v == 0 { 5 } else { 1000 };
            sched
                .try_admit(0, ObjectId(100 + v), v, 1, len, AdmissionPolicy::Contiguous)
                .unwrap();
        }
        let grant = sched
            .try_admit(
                0,
                ObjectId(0),
                0,
                2,
                10,
                AdmissionPolicy::Fragmented {
                    max_buffer_fragments: 16,
                    max_delay_intervals: 8,
                },
            )
            .unwrap();
        let display = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        (sched, display)
    }

    #[test]
    fn figure6_state_before_coalescing() {
        let (_, d) = figure6();
        assert_eq!(d.virtual_disks, vec![6, 1]);
        assert_eq!(d.read_start, vec![2, 0]);
        assert_eq!(d.offsets(), vec![0, 2]);
        assert_eq!(d.buffer_total(), 2);
        assert_eq!(d.delivery_end(), 12);
    }

    #[test]
    fn coalesce_after_neighbours_free() {
        let (mut sched, mut d) = figure6();
        // Before interval 5 the intervening disks (2, 3) are busy: no
        // beneficial plan may use them...
        let early = sched.plan_coalesce(&d, 1);
        if let Some(p) = &early {
            assert!(p.new_disk != 2 && p.new_disk != 3, "{early:?}");
        }
        // At interval 5 the two intervening virtual disks free. Fragment
        // 1 (offset 2, served by v1) hands over to v7 — making X's disks
        // the adjacent pair (6, 7), exactly the paper's outcome.
        let plan = sched.plan_coalesce(&d, 5).expect("a handover exists");
        assert_eq!(plan.frag, 1);
        assert_eq!(plan.old_disk, 1);
        assert_eq!(plan.new_disk, 7);
        assert_eq!(plan.buffer_saving, 2); // down to direct pipelining
        assert_eq!(plan.new_read_start, d.delivery_start);
        // The paper's timeline: the new disk's first direct read is
        // X5.1 at interval 7 (= 2 + 5).
        assert_eq!(plan.handover_sub, 5);
        sched.apply_coalesce(&mut d, &plan);
        assert_eq!(d.offsets(), vec![0, 0]);
        assert_eq!(d.buffer_total(), 0);
        // Old disk freed early: it read subobjects 0..5 and lets go.
        assert_eq!(sched.free_from(plan.old_disk), 5);
        // New disk committed through the display's end.
        assert_eq!(sched.free_from(plan.new_disk), 12);
        // Nothing further to coalesce.
        assert!(sched.plan_coalesce(&d, 6).is_none());
    }

    #[test]
    fn coalesce_respects_later_commitments_on_old_disk() {
        let (mut sched, d) = figure6();
        // Give the old disk (v1) a later commitment right after X ends.
        sched.set_free_from(1, 20);
        assert!(sched.plan_coalesce(&d, 5).is_none());
    }

    #[test]
    fn contiguous_displays_have_nothing_to_coalesce() {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 3, 10, AdmissionPolicy::Contiguous)
            .unwrap();
        let d = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        assert_eq!(d.buffer_total(), 0);
        assert!(sched.plan_coalesce(&d, 3).is_none());
    }

    #[test]
    fn stationary_frame_never_coalesces() {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 8));
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 2, 10, AdmissionPolicy::Contiguous)
            .unwrap();
        let d = ActiveFragmentedDisplay::from_grant(&grant, 0, 10);
        assert!(sched.plan_coalesce(&d, 1).is_none());
    }
}
