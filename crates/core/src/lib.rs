//! # ss-core
//!
//! The paper's primary contribution: **staggered striping** — data placement
//! and interval scheduling that guarantee hiccup-free display of multimedia
//! objects across a farm of low-bandwidth disks.
//!
//! ## Module map
//!
//! * [`media`] — media types, object specifications, and the derived
//!   quantities of Table 1 (degree of declustering `M_X`, subobject size,
//!   display time).
//! * [`placement`] — the placement engines. [`placement::StripingLayout`]
//!   maps every fragment `X_{i.j}` of every object to a `(disk, cylinder)`
//!   pair using the staggered rule
//!   `disk(X_{i.j}) = (start + i·k + j) mod D`; simple striping is the
//!   special case `k = M`, and the degenerate `k = D` reproduces the
//!   single-cluster assignment of virtual data replication.
//! * [`frame`] — the rotating **virtual disk** coordinate frame of §3.2.1:
//!   virtual disk `v` at interval `t` is physical disk `(v + k·t) mod D`,
//!   under which an active display occupies a *fixed* set of `M` virtual
//!   disks.
//! * [`stride`] — the §3.2.2 analysis: the GCD data-skew rule, the number
//!   of distinct disks an object touches, and worst-case startup latency.
//! * [`admission`] — interval-granularity admission control over the
//!   virtual frame: contiguous admission, and **time-fragmented** admission
//!   (§3.2.1) that assembles a display from non-adjacent free disks at the
//!   cost of buffer memory.
//! * [`buffers`] — accounting for the extra buffer memory fragmented
//!   delivery costs (the price §3.2.1 pays to defeat time fragmentation).
//! * [`interconnect`] — per-interval link/switch bookkeeping for a
//!   distributed farm: fragments read from a non-home node charge
//!   interconnect capacity the way reconstruction reads charge disk
//!   intervals.
//! * [`cache`] — the stream-sharing prefix cache: leading intervals of
//!   hot objects kept buffer-resident under a deterministic
//!   popularity-tagged LFU policy, so late joiners of a shared stream
//!   start hiccup-free from memory.
//! * [`coalesce`] — system-side dynamic coalescing: handing a lagging
//!   fragment over to a freed, closer disk to reclaim that memory.
//! * [`algorithms`] — faithful, executable transcriptions of the paper's
//!   Algorithm 1 (`simple_combined_algorithm`) and Algorithm 2
//!   (`write_thread` with dynamic coalescing), validated against the
//!   Figure 6 timeline.
//! * [`schedule`] — materialises a grant into the full per-interval
//!   read/output timeline and machine-checks hiccup-freedom.
//! * [`low_bandwidth`] — §3.2.3: pairing objects with
//!   `B_display ≤ B_disk/2` on logical half-bandwidth disks (the Figure 7
//!   timetable).
//! * [`materialize`] — §3.2.4: fragment-ordered materialization write
//!   plans that keep the tertiary device streaming (zero repositions).
//! * [`vcr`] — §3.2.5: rewind, fast-forward, and fast-forward-with-scan
//!   via replica objects.
//! * [`render`] — ASCII reproductions of the paper's layout figures
//!   (Figures 1, 3, 4, 5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod algorithms;
pub mod buffers;
pub mod cache;
pub mod coalesce;
pub mod frame;
pub mod interconnect;
pub mod low_bandwidth;
pub mod materialize;
pub mod media;
pub mod placement;
pub mod render;
pub mod schedule;
pub mod stride;
pub mod vcr;

pub use admission::{AdmissionGrant, AdmissionPolicy, IntervalScheduler, Outage};
pub use cache::{CacheStats, PrefixCache};
pub use coalesce::{ActiveFragmentedDisplay, CoalescePlan, LostRead};
pub use frame::VirtualFrame;
pub use interconnect::InterconnectLedger;
pub use media::{MediaType, ObjectCatalog, ObjectSpec};
pub use placement::{FragmentAddr, StripingConfig, StripingLayout};
