//! VCR features (§3.2.5): rewind, fast-forward, and fast-forward-with-scan.
//!
//! Plain rewind/fast-forward (no picture) is a *repositioning* problem:
//! either wait for the display's current disk set to rotate to the target
//! subobject's position, or — if suitably positioned disks are idle —
//! re-admit there immediately. No hiccups are perceived because nothing is
//! displayed while seeking.
//!
//! Fast-forward **with scanning** must display (a fraction of) the frames
//! at high speed against a layout built for normal speed, so the paper
//! stores a small **fast-forward replica** per object (e.g. every 16th
//! frame, the typical VHS scan rate) and switches delivery to it.

use crate::media::ObjectSpec;
use serde::{Deserialize, Serialize};
use ss_types::{Bandwidth, Bytes, ObjectId};

/// How a seek (rewind/fast-forward without picture) will be serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeekPlan {
    /// Idle disks are aligned with the target position: switch now.
    Immediate,
    /// Keep the current disk set and wait for it to rotate into position
    /// after this many intervals.
    Rotate {
        /// Intervals to wait before delivery resumes at the target.
        wait_intervals: u64,
    },
}

/// Plans a seek from `current_sub` (the subobject now being displayed) to
/// `target_sub` for a display whose disks advance `stride` per interval on
/// `d` disks. `idle_aligned` reports whether the caller found enough idle
/// disks already positioned at the target (in which case the seek is
/// immediate).
///
/// When rotating, the wait is the number of intervals until the current
/// virtual-disk set reads the target subobject: the set reads subobject
/// `current_sub + j` after `j` intervals, and positions repeat with period
/// `D / gcd(D, k)`, so a backwards target is reached after wrapping.
pub fn plan_seek(
    d: u32,
    stride: u32,
    current_sub: u32,
    target_sub: u32,
    total_subobjects: u32,
    idle_aligned: bool,
) -> SeekPlan {
    assert!(current_sub < total_subobjects && target_sub < total_subobjects);
    if idle_aligned {
        return SeekPlan::Immediate;
    }
    let k = u64::from(stride % d);
    if k == 0 {
        // Stationary layout (k = D): the display's disks hold every
        // subobject, so any position is reachable at the next interval.
        return SeekPlan::Rotate { wait_intervals: 0 };
    }
    if target_sub >= current_sub {
        return SeekPlan::Rotate {
            wait_intervals: u64::from(target_sub - current_sub),
        };
    }
    // Rewind: the virtual-disk set passes the target's *position* once per
    // rotation period, but the data at that position belongs to subobjects
    // congruent to target modulo the period. Wait for the next pass.
    let period = u64::from(d) / crate::frame::gcd(u64::from(d), k);
    let back = u64::from(current_sub - target_sub);
    let wait = (period - (back % period)) % period;
    SeekPlan::Rotate {
        wait_intervals: if wait == 0 && back != 0 { period } else { wait },
    }
}

/// A fast-forward replica object: a decimated copy (every `decimation`-th
/// frame) stored alongside the normal-speed object (§3.2.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FastForwardReplica {
    /// The object this replica scans.
    pub base: ObjectId,
    /// The replica's own catalog entry (same media rate, fewer
    /// subobjects).
    pub spec: ObjectSpec,
    /// Frame decimation factor (16 ≈ VHS scan).
    pub decimation: u32,
    /// Playback speed-up perceived by the viewer.
    pub speedup: u32,
}

impl FastForwardReplica {
    /// Derives the replica spec for `base`: same media type (the display
    /// consumes at the same rate), `⌈n/decimation⌉` subobjects, registered
    /// under `replica_id`.
    pub fn derive(base: &ObjectSpec, replica_id: ObjectId, decimation: u32) -> Self {
        assert!(decimation >= 2, "decimation must skip frames");
        let subobjects = base.subobjects.div_ceil(decimation);
        FastForwardReplica {
            base: base.id,
            spec: ObjectSpec::new(replica_id, base.media.clone(), subobjects.max(1)),
            decimation,
            speedup: decimation,
        }
    }

    /// Storage cost of the replica relative to the base object.
    pub fn relative_size(&self, base: &ObjectSpec, b_disk: Bandwidth, fragment: Bytes) -> f64 {
        self.spec.size(b_disk, fragment).as_u64() as f64
            / base.size(b_disk, fragment).as_u64() as f64
    }

    /// The subobject of the replica corresponding to normal-speed
    /// subobject `sub` (where to enter the replica when the user presses
    /// FF-scan).
    pub fn entry_point(&self, sub: u32) -> u32 {
        (sub / self.decimation).min(self.spec.subobjects - 1)
    }

    /// The normal-speed subobject to resume at when scanning stops at
    /// replica subobject `replica_sub`.
    pub fn resume_point(&self, replica_sub: u32, base: &ObjectSpec) -> u32 {
        (replica_sub * self.decimation).min(base.subobjects - 1)
    }
}

/// What a viewer's session is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaybackState {
    /// Normal-speed playback at the given subobject of the base object.
    Playing {
        /// Current base subobject.
        sub: u32,
    },
    /// Fast-forward scanning at the given subobject of the replica.
    Scanning {
        /// Current replica subobject.
        replica_sub: u32,
    },
    /// The session reached the end of the object.
    Finished,
}

/// A viewer session combining normal playback, seeks, and replica-based
/// fast-forward scanning (§3.2.5), with exact position bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcrSession {
    base: ObjectSpec,
    replica: FastForwardReplica,
    state: PlaybackState,
}

impl VcrSession {
    /// Starts a session at the beginning of `base`, scanning through
    /// `replica` when fast-forward is pressed.
    pub fn new(base: ObjectSpec, replica: FastForwardReplica) -> Self {
        assert_eq!(replica.base, base.id, "replica must belong to the base");
        VcrSession {
            base,
            replica,
            state: PlaybackState::Playing { sub: 0 },
        }
    }

    /// The current state.
    pub fn state(&self) -> PlaybackState {
        self.state
    }

    /// The base-object position the viewer is (logically) at, regardless
    /// of mode.
    pub fn position(&self) -> u32 {
        match self.state {
            PlaybackState::Playing { sub } => sub,
            PlaybackState::Scanning { replica_sub } => {
                self.replica.resume_point(replica_sub, &self.base)
            }
            PlaybackState::Finished => self.base.subobjects - 1,
        }
    }

    /// Advances one time interval: one subobject of whichever object is
    /// being displayed. In scan mode one interval covers `decimation`
    /// subobjects of the base.
    pub fn tick(&mut self) {
        self.state = match self.state {
            PlaybackState::Playing { sub } => {
                if sub + 1 >= self.base.subobjects {
                    PlaybackState::Finished
                } else {
                    PlaybackState::Playing { sub: sub + 1 }
                }
            }
            PlaybackState::Scanning { replica_sub } => {
                if replica_sub + 1 >= self.replica.spec.subobjects {
                    PlaybackState::Finished
                } else {
                    PlaybackState::Scanning {
                        replica_sub: replica_sub + 1,
                    }
                }
            }
            PlaybackState::Finished => PlaybackState::Finished,
        };
    }

    /// Presses fast-forward-with-scan: switches delivery to the replica at
    /// the corresponding position. No-op when already scanning/finished.
    pub fn press_scan(&mut self) {
        if let PlaybackState::Playing { sub } = self.state {
            self.state = PlaybackState::Scanning {
                replica_sub: self.replica.entry_point(sub),
            };
        }
    }

    /// Releases fast-forward: resumes normal playback at the scanned-to
    /// position. No-op unless scanning.
    pub fn release_scan(&mut self) {
        if let PlaybackState::Scanning { replica_sub } = self.state {
            self.state = PlaybackState::Playing {
                sub: self.replica.resume_point(replica_sub, &self.base),
            };
        }
    }

    /// Seeks (no picture) to `target`; the caller supplies the farm
    /// geometry and whether aligned idle disks were found, and receives
    /// the service plan. The session position updates immediately (the
    /// viewer sees nothing during the seek, so no hiccup can occur).
    pub fn seek(&mut self, target: u32, d: u32, stride: u32, idle_aligned: bool) -> SeekPlan {
        let current = self.position();
        let plan = plan_seek(
            d,
            stride,
            current,
            target,
            self.base.subobjects,
            idle_aligned,
        );
        self.state = PlaybackState::Playing { sub: target };
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaType;

    fn base() -> ObjectSpec {
        ObjectSpec::new(ObjectId(7), MediaType::table3(), 3000)
    }

    #[test]
    fn forward_seek_waits_delta_intervals() {
        let p = plan_seek(12, 1, 10, 25, 100, false);
        assert_eq!(p, SeekPlan::Rotate { wait_intervals: 15 });
    }

    #[test]
    fn seek_to_current_is_free() {
        assert_eq!(
            plan_seek(12, 1, 10, 10, 100, false),
            SeekPlan::Rotate { wait_intervals: 0 }
        );
    }

    #[test]
    fn idle_aligned_seek_is_immediate() {
        assert_eq!(plan_seek(12, 1, 10, 90, 100, true), SeekPlan::Immediate);
    }

    #[test]
    fn rewind_waits_for_next_rotation_pass() {
        // D=12, k=1: period 12. Rewinding 5 subobjects waits 12−5 = 7
        // intervals for the set to come around.
        assert_eq!(
            plan_seek(12, 1, 20, 15, 100, false),
            SeekPlan::Rotate { wait_intervals: 7 }
        );
        // Rewinding exactly one period waits a full period.
        assert_eq!(
            plan_seek(12, 1, 20, 8, 100, false),
            SeekPlan::Rotate { wait_intervals: 12 }
        );
    }

    #[test]
    fn rewind_on_stationary_layout_is_instant() {
        // k = D: all subobjects on the same disks; any position is already
        // aligned.
        assert_eq!(
            plan_seek(10, 10, 50, 3, 100, false),
            SeekPlan::Rotate { wait_intervals: 0 }
        );
    }

    #[test]
    fn replica_is_one_sixteenth_of_base() {
        let b = base();
        let r = FastForwardReplica::derive(&b, ObjectId(1007), 16);
        assert_eq!(r.spec.subobjects, 188); // ceil(3000/16)
        let rel = r.relative_size(&b, Bandwidth::mbps(20), Bytes::new(1_512_000));
        assert!((rel - 188.0 / 3000.0).abs() < 1e-9);
        assert_eq!(r.speedup, 16);
    }

    #[test]
    fn entry_and_resume_points_are_consistent() {
        let b = base();
        let r = FastForwardReplica::derive(&b, ObjectId(1007), 16);
        let e = r.entry_point(1000);
        assert_eq!(e, 62);
        let back = r.resume_point(e, &b);
        // Resuming lands within one decimation window of the origin.
        assert!(back <= 1000 && 1000 - back < 16, "resume at {back}");
        // Clamping at the ends.
        assert_eq!(r.entry_point(2999), 187);
        assert_eq!(r.resume_point(187, &b), 2992);
    }

    #[test]
    #[should_panic(expected = "skip frames")]
    fn decimation_one_is_rejected() {
        FastForwardReplica::derive(&base(), ObjectId(1), 1);
    }

    fn session() -> VcrSession {
        let b = base();
        let r = FastForwardReplica::derive(&b, ObjectId(1007), 16);
        VcrSession::new(b, r)
    }

    #[test]
    fn session_playback_advances_and_finishes() {
        let mut s = session();
        assert_eq!(s.state(), PlaybackState::Playing { sub: 0 });
        for _ in 0..100 {
            s.tick();
        }
        assert_eq!(s.position(), 100);
        // Run to the end.
        while s.state() != PlaybackState::Finished {
            s.tick();
        }
        assert_eq!(s.position(), 2999);
    }

    #[test]
    fn scan_covers_sixteen_times_the_ground() {
        let mut s = session();
        for _ in 0..160 {
            s.tick(); // play to subobject 160
        }
        s.press_scan();
        assert_eq!(s.state(), PlaybackState::Scanning { replica_sub: 10 });
        for _ in 0..5 {
            s.tick(); // five intervals of scanning
        }
        s.release_scan();
        // 5 scan intervals × decimation 16 = 80 subobjects skipped.
        assert_eq!(s.state(), PlaybackState::Playing { sub: 240 });
    }

    #[test]
    fn scan_presses_are_idempotent_and_safe_at_end() {
        let mut s = session();
        s.press_scan();
        let st = s.state();
        s.press_scan(); // no-op while scanning
        assert_eq!(s.state(), st);
        // Scan to the end of the replica.
        while s.state() != PlaybackState::Finished {
            s.tick();
        }
        s.press_scan();
        s.release_scan();
        assert_eq!(s.state(), PlaybackState::Finished);
    }

    #[test]
    fn seek_updates_position_and_plans_service() {
        let mut s = session();
        for _ in 0..1200 {
            s.tick();
        }
        let plan = s.seek(1500, 1000, 5, false);
        assert_eq!(
            plan,
            SeekPlan::Rotate {
                wait_intervals: 300
            }
        );
        assert_eq!(s.position(), 1500);
        let plan = s.seek(100, 1000, 5, true);
        assert_eq!(plan, SeekPlan::Immediate);
        assert_eq!(s.position(), 100);
    }

    #[test]
    #[should_panic(expected = "must belong")]
    fn foreign_replica_is_rejected() {
        let b = base();
        let other = ObjectSpec::new(ObjectId(99), MediaType::table3(), 100);
        let r = FastForwardReplica::derive(&other, ObjectId(1), 16);
        VcrSession::new(b, r);
    }
}
