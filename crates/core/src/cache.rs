//! Prefix cache for stream sharing: the first intervals of hot objects
//! kept resident in buffer memory so a viewer joining an in-flight
//! shared stream starts instantly from cache while the disk stream runs
//! ahead (the prefix/multicast VoD design: batch arrivals onto one
//! stream, serve the missed prefix from memory).
//!
//! The cache is budgeted in buffer-pool fragments through the same
//! [`BufferTracker`](crate::buffers::BufferTracker) accounting the
//! display buffers use, and its admission/eviction policy is
//! **deterministic**: popularity-tagged LFU where the victim is the
//! resident object with the smallest `(frequency, salt, id)` key. The
//! salts come from a seeded SplitMix64 stream, so ties between
//! equally-popular objects break identically across runs (and across
//! the serial and sharded engines, which never touch the cache from
//! worker threads).

use crate::buffers::BufferTracker;
use ss_types::Bytes;

/// Running counters of the cache's behavior, folded into the run report
/// by the server models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Prefix lookups that found the object resident.
    pub hits: u64,
    /// Prefix lookups that missed.
    pub misses: u64,
    /// Objects admitted (first residency or re-admission after eviction).
    pub insertions: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
}

/// A deterministic popularity-tagged LFU prefix cache over a dense
/// object-id space.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    buffers: BufferTracker,
    budget: u64,
    /// Per-object resident cost in fragments (`None` = not resident).
    resident: Vec<Option<u64>>,
    /// Seeded per-object tie-break salts: among equally-cold objects the
    /// smaller salt is evicted first.
    salt: Vec<u64>,
    stats: CacheStats,
}

/// SplitMix64: the standard 64-bit mixing constant sequence. Used only
/// to derive per-object tie-break salts from one seed word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PrefixCache {
    /// A cache over `objects` dense ids with a budget of
    /// `budget_fragments` buffers of `fragment` bytes each; `seed` fixes
    /// the eviction tie-break salts.
    pub fn new(objects: u32, fragment: Bytes, budget_fragments: u64, seed: u64) -> Self {
        let mut state = seed;
        let salt = (0..objects).map(|_| splitmix64(&mut state)).collect();
        PrefixCache {
            buffers: BufferTracker::new(fragment, Some(budget_fragments)),
            budget: budget_fragments,
            resident: vec![None; objects as usize],
            salt,
            stats: CacheStats::default(),
        }
    }

    /// Is `object`'s prefix resident? Does not touch the hit/miss
    /// counters — use [`Self::lookup`] on the serving path.
    pub fn contains(&self, object: u32) -> bool {
        self.resident
            .get(object as usize)
            .is_some_and(Option::is_some)
    }

    /// Serving-path lookup: records a hit or miss and reports residency.
    pub fn lookup(&mut self, object: u32) -> bool {
        let hit = self.contains(object);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Offers `object`'s prefix (costing `cost` fragments) for
    /// residency, evicting strictly-colder victims by the
    /// `(freq, salt, id)` LFU key until it fits. `freq` is the caller's
    /// per-object access-frequency table (indexed by dense id). Returns
    /// whether the object is resident afterwards; a no-op `true` if it
    /// already is, `false` if the budget cannot be freed without
    /// evicting an object at least as hot as the candidate.
    pub fn offer(&mut self, object: u32, cost: u64, freq: &[u64]) -> bool {
        let idx = object as usize;
        if self.resident[idx].is_some() {
            return true;
        }
        if cost > self.budget {
            return false; // larger than the whole budget
        }
        let key = |o: usize| (freq.get(o).copied().unwrap_or(0), self.salt[o], o as u64);
        let candidate_key = key(idx);
        while self.buffers.acquire(cost).is_err() {
            // Coldest resident object by the LFU key; evict only if it is
            // strictly colder than the candidate, so a stream of cold
            // objects cannot churn a hot prefix out.
            let victim = self
                .resident
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_some())
                .map(|(o, _)| o)
                .min_by_key(|&o| key(o));
            let Some(v) = victim else { return false };
            if key(v) >= candidate_key {
                return false;
            }
            let freed = self.resident[v].take().expect("victim is resident");
            self.buffers.release(freed);
            self.stats.evictions += 1;
            ss_obs::obs!(ss_obs::Event::CacheEvict { object: v as u32 });
        }
        self.resident[idx] = Some(cost);
        self.stats.insertions += 1;
        ss_obs::obs!(ss_obs::Event::CacheAdmit { object, cost });
        true
    }

    /// The configured fragment budget.
    pub fn capacity(&self) -> u64 {
        self.budget
    }

    /// Fragments currently held by resident prefixes.
    pub fn in_use(&self) -> u64 {
        self.buffers.in_use()
    }

    /// The behavior counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(budget: u64) -> PrefixCache {
        PrefixCache::new(4, Bytes::megabytes(1), budget, 7)
    }

    #[test]
    fn admits_within_budget_and_counts_hits() {
        let freq = [5u64, 3, 1, 0];
        let mut c = cache(10);
        assert!(c.offer(0, 4, &freq));
        assert!(c.offer(1, 4, &freq));
        assert_eq!(c.in_use(), 8);
        assert!(c.lookup(0));
        assert!(!c.lookup(2));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (1, 1, 2, 0));
    }

    #[test]
    fn evicts_strictly_colder_victims_only() {
        let freq = [5u64, 3, 8, 1];
        let mut c = cache(8);
        assert!(c.offer(0, 4, &freq)); // freq 5
        assert!(c.offer(1, 4, &freq)); // freq 3 (coldest resident)
                                       // A hotter object evicts the coldest resident…
        assert!(c.offer(2, 4, &freq)); // freq 8
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
        // …but a colder one cannot churn a hot prefix out.
        assert!(!c.offer(3, 4, &freq)); // freq 1 < both residents
        assert!(c.contains(0) && c.contains(2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_offers_and_reoffers_are_safe() {
        let freq = [1u64, 1, 1, 1];
        let mut c = cache(4);
        assert!(!c.offer(0, 5, &freq)); // larger than the whole budget
        assert!(c.offer(0, 4, &freq));
        assert!(c.offer(0, 4, &freq)); // already resident: no-op true
        assert_eq!(c.in_use(), 4);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn equal_frequency_ties_break_by_seeded_salt_deterministically() {
        let freq = [2u64, 2, 9, 0];
        // Same seed → same victim; the choice is a pure function of the
        // seed, not of HashMap iteration or allocation order.
        let pick_victim = || {
            let mut c = cache(8);
            assert!(c.offer(0, 4, &freq));
            assert!(c.offer(1, 4, &freq));
            assert!(c.offer(2, 4, &freq)); // evicts one of the freq-2 twins
            (c.contains(0), c.contains(1))
        };
        let first = pick_victim();
        assert_eq!(first, pick_victim());
        assert_ne!(first.0, first.1, "exactly one twin survives");
    }
}
