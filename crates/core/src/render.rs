//! ASCII reproductions of the paper's layout figures.
//!
//! These renderers exist so that the examples (and the integration tests)
//! can regenerate Figures 1, 3, 4 and 5 directly from the placement
//! arithmetic — if the arithmetic drifts, the figures stop matching.

use crate::admission::IntervalScheduler;
use crate::placement::StripingLayout;
use crate::schedule::DeliverySchedule;

/// Renders a set of layouts as the paper's subobject-by-disk grid
/// (Figures 1, 4, 5): one row per subobject index, one column per disk,
/// each cell holding `"{name}{sub}.{frag}"` or blanks.
///
/// `names[i]` labels `layouts[i]`'s object (e.g. `"X"`).
pub fn layout_grid(layouts: &[StripingLayout], names: &[&str], rows: u32) -> String {
    assert_eq!(layouts.len(), names.len());
    assert!(!layouts.is_empty());
    let disks = layouts[0].disks;
    assert!(
        layouts.iter().all(|l| l.disks == disks),
        "layouts must share the disk farm"
    );
    // Column width: widest possible label plus one space.
    let width = layouts
        .iter()
        .zip(names)
        .map(|(l, n)| n.len() + format!("{}.{}", rows.saturating_sub(1), l.degree - 1).len())
        .max()
        .unwrap()
        .max(format!("Disk {}", disks - 1).len())
        + 1;
    let mut out = String::new();
    // Header.
    out.push_str(&" ".repeat(13));
    for d in 0..disks {
        out.push_str(&format!("{:<width$}", format!("Disk {d}")));
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
    for row in 0..rows {
        let mut cells = vec![String::new(); disks as usize];
        for (l, name) in layouts.iter().zip(names) {
            if row < l.subobjects {
                for frag in 0..l.degree {
                    let disk = l.fragment_disk(row, frag).index();
                    cells[disk] = format!("{name}{row}.{frag}");
                }
            }
        }
        out.push_str(&format!("Subobject {row:<3}"));
        for c in &cells {
            out.push_str(&format!("{c:<width$}"));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// One cell of the Figure 3 cluster-schedule table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterCell {
    /// The cluster reads the given subobject of the named display.
    Read {
        /// Display label (e.g. `"X"`).
        name: String,
        /// Subobject index read this interval.
        sub: u32,
    },
    /// The cluster has no work this interval.
    Idle,
}

/// Renders the Figure 3 style table: for `intervals` consecutive time
/// intervals, which subobject each of `clusters` clusters reads.
///
/// `displays` lists `(name, start_cluster_at_t0, next_sub_at_t0,
/// total_subobjects)` for each active display; each display advances one
/// cluster (mod `clusters`) per interval — the simple-striping schedule.
pub fn cluster_schedule(
    clusters: u32,
    intervals: u32,
    displays: &[(&str, u32, u32, u32)],
) -> Vec<Vec<ClusterCell>> {
    let mut table = Vec::with_capacity(intervals as usize);
    for t in 0..intervals {
        let mut row = vec![ClusterCell::Idle; clusters as usize];
        for &(name, start_cluster, next_sub, total) in displays {
            let sub = next_sub + t;
            if sub < total {
                let cluster = ((start_cluster + t) % clusters) as usize;
                assert!(
                    matches!(row[cluster], ClusterCell::Idle),
                    "two displays on cluster {cluster} at interval {t}"
                );
                row[cluster] = ClusterCell::Read {
                    name: name.to_string(),
                    sub,
                };
            }
        }
        table.push(row);
    }
    table
}

/// Formats a [`cluster_schedule`] table as text.
pub fn format_cluster_schedule(table: &[Vec<ClusterCell>]) -> String {
    let clusters = table.first().map_or(0, |r| r.len());
    let mut out = String::new();
    out.push_str("    ");
    for c in 0..clusters {
        out.push_str(&format!("{:<14}", format!("CLUSTER {c}")));
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
    for (t, row) in table.iter().enumerate() {
        out.push_str(&format!("{:<4}", t + 1));
        for cell in row {
            let txt = match cell {
                ClusterCell::Read { name, sub } => format!("read {name}({sub})"),
                ClusterCell::Idle => "idle".to_string(),
            };
            out.push_str(&format!("{txt:<14}"));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Renders the Figure 6 style occupancy raster: one row per interval,
/// one column per **physical** disk; `#` = committed to some display,
/// `.` = free. Overlay labels mark the reads of specific displays (the
/// figure's `X0.0`-style annotations, one character per display).
///
/// The scheduler's occupancy lives in the rotating virtual frame, so a
/// physical disk `p` is busy at interval `t` iff the virtual disk over it
/// is committed then.
pub fn occupancy_raster(
    scheduler: &IntervalScheduler,
    from_interval: u64,
    to_interval: u64,
    overlays: &[(char, &DeliverySchedule)],
) -> String {
    assert!(from_interval <= to_interval);
    let d = scheduler.frame().disks();
    let mut out = String::new();
    out.push_str("        ");
    for p in 0..d {
        out.push_str(&format!("{:>2}", p % 100));
    }
    out.push('\n');
    for t in from_interval..=to_interval {
        out.push_str(&format!("t={t:<5} "));
        for p in 0..d {
            let v = scheduler.frame().virtual_of(p, t);
            let mut cell = if scheduler.is_free(v, t) { '.' } else { '#' };
            for (label, sched) in overlays {
                if sched.reads_at(t).any(|r| r.disk.0 == p) {
                    cell = *label;
                }
            }
            out.push(' ');
            out.push(cell);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::ObjectId;

    #[test]
    fn figure1_grid_has_expected_cells() {
        // Figure 1: 9 disks, X with M=3, simple striping (k=3).
        let x = StripingLayout::new(ObjectId(0), 0, 3, 9, 9, 3);
        let grid = layout_grid(&[x], &["X"], 4);
        let lines: Vec<&str> = grid.lines().collect();
        assert!(lines[0].contains("Disk 0") && lines[0].contains("Disk 8"));
        // Subobject 0 occupies disks 0..2.
        assert!(lines[1].starts_with("Subobject 0"));
        assert!(lines[1].contains("X0.0") && lines[1].contains("X0.2"));
        // Subobject 1 occupies disks 3..5: its row must NOT contain X1.0
        // before column of disk 3 — check by relative order.
        let row1 = lines[2];
        let pos_x10 = row1.find("X1.0").unwrap();
        let pos_header_d3 = lines[0].find("Disk 3").unwrap();
        assert!(
            (pos_x10 as i64 - pos_header_d3 as i64).abs() < 3,
            "X1.0 not under Disk 3:\n{grid}"
        );
        // Row 3 wraps back to disk 0.
        assert!(lines[4].contains("X3.0"));
    }

    #[test]
    fn figure5_grid_reproduces_mixed_media_rows() {
        // Figure 5: 12 disks, stride 1; Y (M=4) starts at 0, X (M=3) at 4,
        // Z (M=2) at 7.
        let y = StripingLayout::new(ObjectId(0), 0, 4, 13, 12, 1);
        let x = StripingLayout::new(ObjectId(1), 4, 3, 13, 12, 1);
        let z = StripingLayout::new(ObjectId(2), 7, 2, 13, 12, 1);
        let grid = layout_grid(&[y, x, z], &["Y", "X", "Z"], 13);
        let lines: Vec<&str> = grid.lines().collect();
        // Row 0: Y0.0..Y0.3 X0.0..X0.2 Z0.0 Z0.1 — disks 0..8 filled,
        // disks 9..11 blank.
        let r0 = lines[1];
        for cell in ["Y0.0", "Y0.3", "X0.0", "X0.2", "Z0.0", "Z0.1"] {
            assert!(r0.contains(cell), "row 0 missing {cell}:\n{grid}");
        }
        // Row 4 (paper): Z4.1 on disk 0, Y4 on disks 4..7, X4 on 8..10,
        // Z4.0 on disk 11.
        let r4 = lines[5];
        assert!(r4.contains("Z4.1"));
        assert!(r4.contains("Y4.2"));
        assert!(r4.contains("X4.0"));
        assert!(r4.contains("Z4.0"));
        let pos_z41 = r4.find("Z4.1").unwrap();
        let pos_y40 = r4.find("Y4.0").unwrap();
        assert!(pos_z41 < pos_y40, "Z4.1 should wrap to disk 0:\n{grid}");
        // Row 12 (paper): Y12.0..3 X12.0..2 Z12.0..1 starting at disk 0.
        let r12 = lines[13];
        assert!(r12.contains("Y12.0") && r12.contains("Z12.1"));
    }

    #[test]
    fn figure3_schedule_table() {
        // Figure 3: 3 clusters, displays X (ends after i+2), Y, Z. At
        // interval 1 (t=0 here): cluster 0 reads Z(k+1), cluster 1 reads
        // X(i+1), cluster 2 reads Y(j+1). Using i=0,j=0,k=0 with X having
        // only 3 subobjects total (X ends, leaving idle slots).
        let table = cluster_schedule(
            3,
            6,
            &[
                ("X", 1, 1, 3), // next reads X(1) on cluster 1; X(2) is last
                ("Y", 2, 1, 7),
                ("Z", 0, 1, 7),
            ],
        );
        // Interval 1.
        assert_eq!(
            table[0][0],
            ClusterCell::Read {
                name: "Z".into(),
                sub: 1
            }
        );
        assert_eq!(
            table[0][1],
            ClusterCell::Read {
                name: "X".into(),
                sub: 1
            }
        );
        // Interval 2: X(2) on cluster 2.
        assert_eq!(
            table[1][2],
            ClusterCell::Read {
                name: "X".into(),
                sub: 2
            }
        );
        // Interval 3: X finished; cluster 0 idle (the paper's "disk
        // cluster 0 does not read a subobject during time interval 3").
        assert_eq!(table[2][0], ClusterCell::Idle);
        // Intervals 4 and 5: clusters 1 and 2 idle respectively.
        assert_eq!(table[3][1], ClusterCell::Idle);
        assert_eq!(table[4][2], ClusterCell::Idle);
        // Interval 6: cluster 0 idle again (periodicity).
        assert_eq!(table[5][0], ClusterCell::Idle);
        let txt = format_cluster_schedule(&table);
        assert!(txt.contains("CLUSTER 0"));
        assert!(txt.contains("read Z(1)"));
        assert!(txt.contains("idle"));
    }

    #[test]
    #[should_panic(expected = "two displays")]
    fn schedule_detects_collisions() {
        cluster_schedule(3, 2, &[("A", 0, 0, 9), ("B", 0, 0, 9)]);
    }

    #[test]
    fn occupancy_raster_shows_rotation_and_overlays() {
        use crate::admission::{AdmissionPolicy, IntervalScheduler};
        use crate::frame::VirtualFrame;
        let frame = VirtualFrame::new(8, 1);
        let mut sched = IntervalScheduler::new(frame);
        let layout = StripingLayout::new(ObjectId(0), 0, 2, 6, 8, 1);
        let grant = sched
            .try_admit(0, ObjectId(0), 0, 2, 6, AdmissionPolicy::Contiguous)
            .unwrap();
        let ds = DeliverySchedule::from_grant(&grant, &layout, &frame);
        let raster = occupancy_raster(&sched, 0, 5, &[('X', &ds)]);
        let lines: Vec<&str> = raster.lines().collect();
        // Row t=0: X on disks 0,1; everything else free.
        assert!(lines[1].starts_with("t=0"));
        assert_eq!(lines[1].matches('X').count(), 2);
        assert_eq!(lines[1].matches('.').count(), 6);
        // Rotation: at t=3, X sits over disks 3,4 — i.e., the X cells
        // move right one column per row.
        let x_pos = |line: &str| line.find('X').unwrap();
        assert!(x_pos(lines[2]) > x_pos(lines[1]));
        assert!(x_pos(lines[3]) > x_pos(lines[2]));
        // No '#': the only commitment is the overlaid display itself.
        assert_eq!(raster.matches('#').count(), 0);
    }
}
