//! Low-bandwidth objects (§3.2.3): logical sub-disk scheduling.
//!
//! Objects with `B_display < B_disk` (audio, slow-scan video) waste disk
//! bandwidth if each is given a whole disk per interval: a 30 mbps object
//! on 20 mbps disks needs ⌈30/20⌉ = 2 disks and squanders 25 % of them.
//! The paper's remedy splits each physical disk into `L` **logical disks**
//! of `B_disk / L` bandwidth each, reads the paired subobjects back to
//! back within one interval, and bridges the gaps with one extra buffer
//! per object (the Figure 7 timetable).
//!
//! [`logical_fit`] quantifies the waste with and without logical disks;
//! [`PairingSchedule`] generates the Figure 7 read/transmit timetable and
//! checks its continuity.

use serde::{Deserialize, Serialize};
use ss_types::Bandwidth;

/// How well an object of rate `display` fits integral allocation units of
/// rate `unit`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Units allocated (`⌈display/unit⌉`).
    pub units: u64,
    /// Bandwidth allocated.
    pub allocated: Bandwidth,
    /// Fraction of the allocated bandwidth wasted by rounding up.
    pub wasted: f64,
}

/// Computes the rounding waste when `display` is served by integral units
/// of `unit` bandwidth.
pub fn fit(display: Bandwidth, unit: Bandwidth) -> FitReport {
    let units = display.div_ceil(unit);
    let allocated = unit * units;
    let wasted = 1.0 - display.as_mbps_f64() / allocated.as_mbps_f64();
    FitReport {
        units,
        allocated,
        wasted,
    }
}

/// Computes the fit when each physical disk of rate `b_disk` is split into
/// `slots` logical disks (§3.2.3's scheme with `slots = 2` halves).
pub fn logical_fit(display: Bandwidth, b_disk: Bandwidth, slots: u64) -> FitReport {
    assert!(slots >= 1);
    fit(display, b_disk / slots)
}

/// One slot's action in the Figure 7 timetable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotAction {
    /// Read subobject `sub` of object `obj` from disk (pipelining the
    /// first half straight to the network).
    ReadAndTransmit {
        /// Which of the paired objects (0 or 1).
        obj: u8,
        /// Subobject index read.
        sub: u32,
    },
    /// Transmit the second half of `(obj, sub)` from the buffer while the
    /// *other* object is being read.
    TransmitBuffered {
        /// Which of the paired objects (0 or 1).
        obj: u8,
        /// Subobject whose buffered half is transmitted.
        sub: u32,
    },
}

/// The Figure 7 timetable for two paired half-bandwidth objects sharing
/// one disk stream: each time interval is split into two halves; object 0
/// is read in the first half, object 1 in the second, and each object's
/// buffered half bridges into the neighbouring half-interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairingSchedule {
    /// `half_intervals[h]` lists the actions in half-interval `h`
    /// (half-interval `2t` and `2t+1` make up time interval `t`).
    pub half_intervals: Vec<Vec<SlotAction>>,
}

impl PairingSchedule {
    /// Builds the schedule for two objects of `n` subobjects each.
    pub fn pair(n: u32) -> Self {
        let mut halves: Vec<Vec<SlotAction>> = Vec::with_capacity(2 * n as usize + 1);
        for t in 0..n {
            // First half of interval t: read X_t (transmit X_t's first
            // half directly) and transmit Y_{t-1}'s buffered second half.
            let mut first = vec![SlotAction::ReadAndTransmit { obj: 0, sub: t }];
            if t > 0 {
                first.push(SlotAction::TransmitBuffered { obj: 1, sub: t - 1 });
            }
            halves.push(first);
            // Second half: read Y_t and transmit X_t's buffered half.
            halves.push(vec![
                SlotAction::ReadAndTransmit { obj: 1, sub: t },
                SlotAction::TransmitBuffered { obj: 0, sub: t },
            ]);
        }
        // Trailing half-interval: drain Y's last buffered half.
        if n > 0 {
            halves.push(vec![SlotAction::TransmitBuffered { obj: 1, sub: n - 1 }]);
        }
        PairingSchedule {
            half_intervals: halves,
        }
    }

    /// Verifies delivery continuity: once an object's first transmission
    /// happens, it transmits something in **every** subsequent
    /// half-interval until its data runs out (the §3.2.3 requirement that
    /// "the data in subobject `X_i` needs to be delivered during the
    /// entire time interval"). Returns the number of half-intervals each
    /// object transmitted.
    pub fn verify_continuity(&self) -> Result<[u32; 2], String> {
        let mut counts = [0u32; 2];
        for obj in 0..2u8 {
            let transmitting: Vec<bool> = self
                .half_intervals
                .iter()
                .map(|acts| {
                    acts.iter().any(|a| match a {
                        SlotAction::ReadAndTransmit { obj: o, .. } => *o == obj,
                        SlotAction::TransmitBuffered { obj: o, .. } => *o == obj,
                    })
                })
                .collect();
            let first = transmitting.iter().position(|&b| b);
            let last = transmitting.iter().rposition(|&b| b);
            if let (Some(f), Some(l)) = (first, last) {
                for (h, &on) in transmitting.iter().enumerate().take(l + 1).skip(f) {
                    if !on {
                        return Err(format!("object {obj} silent in half-interval {h}"));
                    }
                }
                counts[obj as usize] = (l - f + 1) as u32;
            }
        }
        Ok(counts)
    }

    /// Maximum number of buffered half-subobjects held at once (the extra
    /// memory bill of the scheme). For the two-object pairing this is one
    /// half-subobject per object.
    pub fn max_buffered_halves(&self) -> u32 {
        // By construction: X buffers its second half during each second
        // half-interval; Y buffers during each first half-interval. At any
        // instant at most one half per object is pending.
        2
    }
}

/// Generalisation of the pairing to `L ≥ 2` objects sharing one disk
/// stream: each time interval is split into `L` slices; object `g` is
/// read in slice `g` and its remaining `L−1` slices' worth of data is
/// buffered and transmitted while the other objects are read. Each object
/// effectively owns a logical disk of `B_disk / L`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupSchedule {
    /// Number of objects sharing the disk (`L`).
    pub group: u32,
    /// `slices[s]` lists the actions in slice `s` (slice `L·t + g` is
    /// slice `g` of interval `t`).
    pub slices: Vec<Vec<SlotAction>>,
}

impl GroupSchedule {
    /// Builds the schedule for `group` objects of `n` subobjects each.
    /// Panics unless `group ≥ 2` (a single object needs no sharing).
    pub fn new(group: u32, n: u32) -> Self {
        assert!(group >= 2, "grouping needs at least two objects");
        let l = group as usize;
        let mut slices: Vec<Vec<SlotAction>> = Vec::with_capacity(l * n as usize + l);
        for t in 0..n {
            for g in 0..l {
                let mut acts = vec![SlotAction::ReadAndTransmit {
                    obj: g as u8,
                    sub: t,
                }];
                // Every *other* object transmits a buffered slice of its
                // most recent subobject.
                for other in 0..l {
                    if other == g {
                        continue;
                    }
                    // Object `other` has data buffered once it has been
                    // read at least once: subobject t if other < g
                    // (read earlier this interval), else t−1.
                    let sub = if other < g { Some(t) } else { t.checked_sub(1) };
                    if let Some(sub) = sub {
                        acts.push(SlotAction::TransmitBuffered {
                            obj: other as u8,
                            sub,
                        });
                    }
                }
                slices.push(acts);
            }
        }
        // Drain: object g's last read (slice L(n−1)+g) covers delivery
        // through slice Ln+g−1, so drain slice j (global index Ln+j)
        // carries exactly the objects with index > j.
        if n > 0 {
            for j in 0..l.saturating_sub(1) {
                let acts: Vec<SlotAction> = ((j + 1)..l)
                    .map(|other| SlotAction::TransmitBuffered {
                        obj: other as u8,
                        sub: n - 1,
                    })
                    .collect();
                slices.push(acts);
            }
        }
        GroupSchedule { group, slices }
    }

    /// Verifies that, once an object starts transmitting, it transmits in
    /// every slice until its data runs out, and that every subobject of
    /// every object is read exactly once. Returns per-object transmit
    /// slice counts.
    pub fn verify_continuity(&self) -> std::result::Result<Vec<u32>, String> {
        let l = self.group as usize;
        let mut counts = vec![0u32; l];
        for obj in 0..l as u8 {
            let on: Vec<bool> = self
                .slices
                .iter()
                .map(|acts| {
                    acts.iter().any(|a| match a {
                        SlotAction::ReadAndTransmit { obj: o, .. }
                        | SlotAction::TransmitBuffered { obj: o, .. } => *o == obj,
                    })
                })
                .collect();
            let (first, last) = match (on.iter().position(|&b| b), on.iter().rposition(|&b| b)) {
                (Some(f), Some(lst)) => (f, lst),
                _ => continue,
            };
            for (s, &flag) in on.iter().enumerate().take(last + 1).skip(first) {
                if !flag {
                    return Err(format!("object {obj} silent in slice {s}"));
                }
            }
            counts[obj as usize] = (last - first + 1) as u32;
        }
        // Exactly one read per (object, subobject).
        let mut reads = std::collections::HashMap::new();
        for acts in &self.slices {
            for a in acts {
                if let SlotAction::ReadAndTransmit { obj, sub } = a {
                    *reads.entry((*obj, *sub)).or_insert(0u32) += 1;
                }
            }
        }
        for (&(obj, sub), &c) in &reads {
            if c != 1 {
                return Err(format!("object {obj} subobject {sub} read {c} times"));
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_30mbps_wastes_25_percent() {
        // §3.2.3: "an object requiring 30 mbps when B_disk = 20 would
        // waste 25 percent of the bandwidth of the two disks used".
        let r = fit(Bandwidth::mbps(30), Bandwidth::mbps(20));
        assert_eq!(r.units, 2);
        assert_eq!(r.allocated, Bandwidth::mbps(40));
        assert!((r.wasted - 0.25).abs() < 1e-12);
    }

    #[test]
    fn half_disks_fit_3_halves_exactly() {
        // §3.2.3: "an object that has B_display = 3/2 B_disk can be
        // exactly accommodated with no loss due to rounding up".
        let r = logical_fit(Bandwidth::mbps(30), Bandwidth::mbps(20), 2);
        assert_eq!(r.units, 3);
        assert_eq!(r.allocated, Bandwidth::mbps(30));
        assert!(r.wasted.abs() < 1e-12);
    }

    #[test]
    fn logical_split_never_increases_waste() {
        for mbps in [5u64, 10, 15, 25, 30, 45, 55, 70, 90, 110] {
            let whole = fit(Bandwidth::mbps(mbps), Bandwidth::mbps(20));
            let halves = logical_fit(Bandwidth::mbps(mbps), Bandwidth::mbps(20), 2);
            assert!(
                halves.wasted <= whole.wasted + 1e-12,
                "{mbps} mbps: {} vs {}",
                halves.wasted,
                whole.wasted
            );
        }
    }

    #[test]
    fn figure7_first_interval_matches_paper() {
        // Figure 7, disk 0, interval 0: first half "Read X0 / Xmit X0a";
        // second half "Read Y0 / Xmit X0b / Xmit Y0a".
        let s = PairingSchedule::pair(3);
        assert_eq!(
            s.half_intervals[0],
            vec![SlotAction::ReadAndTransmit { obj: 0, sub: 0 }]
        );
        assert_eq!(
            s.half_intervals[1],
            vec![
                SlotAction::ReadAndTransmit { obj: 1, sub: 0 },
                SlotAction::TransmitBuffered { obj: 0, sub: 0 },
            ]
        );
        // Interval 1 first half: Read X1 / Xmit X1a / Xmit Y0b.
        assert_eq!(
            s.half_intervals[2],
            vec![
                SlotAction::ReadAndTransmit { obj: 0, sub: 1 },
                SlotAction::TransmitBuffered { obj: 1, sub: 0 },
            ]
        );
    }

    #[test]
    fn pairing_delivery_is_continuous() {
        let s = PairingSchedule::pair(10);
        let counts = s.verify_continuity().unwrap();
        // X transmits from half 0 through half 19 (20 halves = 10
        // intervals); Y from half 1 through half 20.
        assert_eq!(counts, [20, 20]);
    }

    #[test]
    fn pairing_buffer_bill_is_one_half_per_object() {
        let s = PairingSchedule::pair(5);
        assert_eq!(s.max_buffered_halves(), 2);
    }

    #[test]
    fn every_subobject_read_exactly_once() {
        let n = 7u32;
        let s = PairingSchedule::pair(n);
        for obj in 0..2u8 {
            let mut reads: Vec<u32> = s
                .half_intervals
                .iter()
                .flatten()
                .filter_map(|a| match a {
                    SlotAction::ReadAndTransmit { obj: o, sub } if *o == obj => Some(*sub),
                    _ => None,
                })
                .collect();
            reads.sort_unstable();
            assert_eq!(reads, (0..n).collect::<Vec<_>>(), "object {obj}");
        }
    }

    #[test]
    fn group_of_two_matches_pairing_shape() {
        let g = GroupSchedule::new(2, 4);
        let counts = g.verify_continuity().unwrap();
        // Each object transmits in 2n consecutive slices, same as the
        // dedicated pairing.
        assert_eq!(counts, vec![8, 8]);
    }

    #[test]
    fn group_of_four_quarters_the_disk() {
        // Four objects with B_display = B_disk/4 share one disk: quarter
        // slices, continuous delivery for each.
        let g = GroupSchedule::new(4, 6);
        let counts = g.verify_continuity().unwrap();
        for (obj, &c) in counts.iter().enumerate() {
            assert_eq!(c, 24, "object {obj}");
        }
        // 6 intervals × 4 slices + 3 drain slices.
        assert_eq!(g.slices.len(), 27);
    }

    #[test]
    fn quarter_disk_fit_is_exact_for_multiples() {
        // 5 mbps objects on 20 mbps disks: whole disks waste 75 %;
        // quarter logical disks waste nothing.
        let whole = fit(Bandwidth::mbps(5), Bandwidth::mbps(20));
        assert!((whole.wasted - 0.75).abs() < 1e-12);
        let quarters = logical_fit(Bandwidth::mbps(5), Bandwidth::mbps(20), 4);
        assert_eq!(quarters.units, 1);
        assert!(quarters.wasted.abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn group_of_one_is_rejected() {
        GroupSchedule::new(1, 5);
    }

    #[test]
    fn empty_pairing_is_empty() {
        let s = PairingSchedule::pair(0);
        assert!(s.half_intervals.is_empty());
        assert_eq!(s.verify_continuity().unwrap(), [0, 0]);
    }
}
