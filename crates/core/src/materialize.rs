//! Materialization write plans (§3.2.4): moving an object from tertiary
//! store onto the staggered disk layout without wasting either device's
//! bandwidth.
//!
//! The tertiary device streams slower than a display consumes
//! (`B_tertiary < B_display`), so each time interval it produces only a
//! few fragments' worth of data. If the tape is recorded in
//! **fragment-delivery order** (`X_{0.0}, X_{0.1}, …` — exactly the order
//! the disks need them), the writer simply walks the tape forward, writing
//! each produced fragment to its home disk: zero repositioning, full
//! streaming bandwidth. A tape recorded in plain display order with a
//! different fragment grouping would force a reposition whenever the
//! write target jumps — the paper's "wasteful work".

use crate::placement::StripingLayout;
use serde::{Deserialize, Serialize};
use ss_types::{Bandwidth, Bytes, DiskId, SimDuration};

/// One fragment write in the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledWrite {
    /// Interval (counting from materialization start) of the write.
    pub interval: u64,
    /// Destination disk.
    pub disk: DiskId,
    /// Subobject index.
    pub sub: u32,
    /// Fragment index within the subobject.
    pub frag: u32,
    /// Position of this fragment on the tape (monotone for a
    /// fragment-ordered tape — the no-reposition property).
    pub tape_position: u64,
}

/// The complete write plan of one materialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializationPlan {
    /// All writes, in execution order.
    pub writes: Vec<ScheduledWrite>,
    /// Whole fragments the device produces per interval.
    pub fragments_per_interval: u64,
    /// Total intervals the materialization occupies.
    pub intervals: u64,
}

impl MaterializationPlan {
    /// Plans a fragment-ordered materialization of `layout` with a device
    /// of `b_tertiary` raw bandwidth, a global `interval` length, and the
    /// given `fragment` size.
    ///
    /// Fractional per-interval production is handled by accumulating
    /// credit: the device banks `B_t × interval` bytes per interval and a
    /// fragment is written whenever a whole fragment of credit exists, so
    /// the long-run write rate is exact (no systematic rounding loss).
    pub fn fragment_ordered(
        layout: &StripingLayout,
        b_tertiary: Bandwidth,
        interval: SimDuration,
        fragment: Bytes,
    ) -> Self {
        assert!(!b_tertiary.is_zero(), "tertiary bandwidth must be positive");
        let per_interval_bytes = b_tertiary.bytes_in(interval).as_u64();
        assert!(
            per_interval_bytes > 0,
            "interval too short for any production"
        );
        let frag_bytes = fragment.as_u64();
        let total = layout.total_fragments();
        let mut writes = Vec::with_capacity(total as usize);
        let mut credit: u64 = 0;
        let mut interval_idx: u64 = 0;
        let mut tape_position: u64 = 0;
        'outer: for sub in 0..layout.subobjects {
            for frag_idx in 0..layout.degree {
                // Wait until a whole fragment of credit has accumulated.
                while credit < frag_bytes {
                    credit += per_interval_bytes;
                    interval_idx += 1;
                }
                credit -= frag_bytes;
                writes.push(ScheduledWrite {
                    interval: interval_idx - 1,
                    disk: layout.fragment_disk(sub, frag_idx),
                    sub,
                    frag: frag_idx,
                    tape_position,
                });
                tape_position += 1;
                if tape_position == total {
                    break 'outer;
                }
            }
        }
        MaterializationPlan {
            fragments_per_interval: per_interval_bytes / frag_bytes,
            intervals: interval_idx,
            writes,
        }
    }

    /// The number of tape repositions the plan incurs: one for every
    /// backwards (or skipping) move of the tape position. Zero for a
    /// fragment-ordered tape — the §3.2.4 guarantee this module exists to
    /// demonstrate.
    pub fn repositions(&self) -> u64 {
        self.writes
            .windows(2)
            .filter(|w| w[1].tape_position != w[0].tape_position + 1)
            .count() as u64
    }

    /// The maximum number of distinct disks written in any one interval.
    pub fn peak_disks_per_interval(&self) -> usize {
        use std::collections::HashMap;
        let mut per: HashMap<u64, Vec<DiskId>> = HashMap::new();
        for w in &self.writes {
            per.entry(w.interval).or_default().push(w.disk);
        }
        per.values()
            .map(|disks| {
                let mut d = disks.clone();
                d.sort_unstable();
                d.dedup();
                d.len()
            })
            .max()
            .unwrap_or(0)
    }

    /// Wall-clock duration of the materialization.
    pub fn duration(&self, interval: SimDuration) -> SimDuration {
        interval * self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ss_types::ObjectId;

    /// The §3.2.4 example: B_display = 80 mbps, B_tertiary = 40 mbps,
    /// B_disk = 20 mbps ⇒ M = 4, two fragments produced per interval.
    fn example_layout() -> StripingLayout {
        StripingLayout::new(ObjectId(0), 0, 4, 50, 100, 1)
    }

    fn plan() -> MaterializationPlan {
        // interval = fragment/B_disk: 1.512 MB at 20 mbps = 0.6048 s;
        // 40 mbps × 0.6048 s = 3.024 MB = exactly 2 fragments.
        MaterializationPlan::fragment_ordered(
            &example_layout(),
            Bandwidth::mbps(40),
            SimDuration::from_micros(604_800),
            Bytes::new(1_512_000),
        )
    }

    #[test]
    fn paper_example_writes_two_fragments_per_cycle() {
        let p = plan();
        assert_eq!(p.fragments_per_interval, 2);
        // 200 fragments at 2 per interval = 100 intervals.
        assert_eq!(p.intervals, 100);
        assert_eq!(p.writes.len(), 200);
        // First cycle writes X0.0, X0.1; second cycle X0.2, X0.3; the
        // subobject completes in two cycles (M / fragments_per_interval).
        assert_eq!((p.writes[0].sub, p.writes[0].frag), (0, 0));
        assert_eq!((p.writes[1].sub, p.writes[1].frag), (0, 1));
        assert_eq!(p.writes[0].interval, 0);
        assert_eq!(p.writes[2].interval, 1);
        assert_eq!((p.writes[3].sub, p.writes[3].frag), (0, 3));
    }

    #[test]
    fn fragment_ordered_tape_never_repositions() {
        assert_eq!(plan().repositions(), 0);
    }

    #[test]
    fn writes_follow_the_staggered_layout() {
        let l = example_layout();
        for w in &plan().writes {
            assert_eq!(w.disk, l.fragment_disk(w.sub, w.frag));
        }
    }

    #[test]
    fn write_load_is_bounded_by_production() {
        // At 2 fragments/interval no interval touches more than 2 disks.
        assert_eq!(plan().peak_disks_per_interval(), 2);
    }

    #[test]
    fn duration_matches_streaming_time() {
        let p = plan();
        // 200 fragments × 1.512 MB at 40 mbps = 60.48 s = 100 intervals.
        let d = p.duration(SimDuration::from_micros(604_800));
        assert_eq!(d, SimDuration::from_micros(60_480_000));
    }

    #[test]
    fn fractional_production_banks_credit() {
        // B_t = 30 mbps produces 1.5 fragments per interval: writes 1, 2,
        // 1, 2, ... fragments per interval; the long-run rate is exact.
        let l = StripingLayout::new(ObjectId(0), 3, 3, 40, 30, 1);
        let p = MaterializationPlan::fragment_ordered(
            &l,
            Bandwidth::mbps(30),
            SimDuration::from_micros(604_800),
            Bytes::new(1_512_000),
        );
        assert_eq!(p.writes.len(), 120);
        assert_eq!(p.repositions(), 0);
        // 120 fragments / 1.5 per interval = 80 intervals.
        assert_eq!(p.intervals, 80);
        assert!(p.peak_disks_per_interval() <= 2);
    }
}
