//! Placement engines: mapping every fragment of every object onto
//! `(disk, cylinder)` addresses.
//!
//! The staggered rule places fragment `j` of subobject `i` of an object
//! whose first subobject starts on disk `s` at physical disk
//! `(s + i·k + j) mod D`. Three classic layouts fall out of the stride:
//!
//! * `k = M` — **simple striping** (§3.1, Figure 1): consecutive
//!   subobjects occupy disjoint, physically adjacent clusters.
//! * `1 ≤ k < M` — **staggered striping** proper (§3.2, Figures 4 and 5):
//!   consecutive subobjects overlap, shifted by `k`.
//! * `k ≡ 0 (mod D)` — the stationary layout underlying **virtual data
//!   replication**: every subobject lands on the same `M` disks.
//!
//! [`StripingLayout`] is the pure address arithmetic; [`PlacementMap`]
//! additionally tracks per-disk cylinder allocation so residency decisions
//! respect storage capacity.

use crate::media::ObjectSpec;
use serde::{Deserialize, Serialize};
use ss_disk::{CylinderAllocator, CylinderRange};
use ss_types::{Bandwidth, Bytes, DiskId, Error, ObjectId, Result};
use std::collections::HashMap;

/// System-wide placement parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StripingConfig {
    /// Number of disks `D`.
    pub disks: u32,
    /// The stride `k` (distance between first fragments of consecutive
    /// subobjects). `k % D == 0` gives the stationary layout.
    pub stride: u32,
    /// Global fragment size (the same for every media type; §3.2).
    pub fragment: Bytes,
    /// Effective per-disk bandwidth `B_disk` used to derive degrees of
    /// declustering.
    pub b_disk: Bandwidth,
    /// Optional parity-group size `g`: when set, every subobject carries
    /// one rotated (RAID-5 style) parity fragment per `g` data fragments,
    /// placed at rotational offsets `M..M + ceil(M/g)` past the
    /// subobject's first fragment — the same staggered arithmetic as the
    /// data, so the parity of group `q` keeps a constant virtual disk for
    /// the display's whole window. `None` (the default, and what every
    /// serialized seed config deserializes to) is the paper's parity-free
    /// layout, byte-identical to the baseline.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub parity_group: Option<u32>,
}

impl StripingConfig {
    /// The §4 simulation configuration: `D = 1000`, `k = 5` (simple
    /// striping: the stride equals the degree of the single media type),
    /// one-cylinder fragments of 1.512 MB, `B_disk = 20 mbps`.
    pub fn table3() -> Self {
        StripingConfig {
            disks: 1000,
            stride: 5,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        }
    }

    /// Parity fragments per subobject for a degree-`degree` object:
    /// `ceil(degree / g)` when a parity group is configured, else 0.
    pub fn parity_fragments(&self, degree: u32) -> u32 {
        match self.parity_group {
            Some(g) => degree.div_ceil(g),
            None => 0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.disks == 0 {
            return Err(Error::InvalidConfig {
                reason: "no disks".into(),
            });
        }
        if self.fragment.is_zero() {
            return Err(Error::InvalidConfig {
                reason: "zero fragment size".into(),
            });
        }
        if self.b_disk.is_zero() {
            return Err(Error::InvalidConfig {
                reason: "zero disk bandwidth".into(),
            });
        }
        if self.parity_group == Some(0) {
            return Err(Error::InvalidConfig {
                reason: "parity group must cover at least one fragment".into(),
            });
        }
        Ok(())
    }
}

/// The disk/cylinder address of one fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FragmentAddr {
    /// The drive holding the fragment.
    pub disk: DiskId,
    /// The first cylinder of the fragment on that drive.
    pub cylinder: u32,
}

/// Pure address arithmetic for one placed object.
///
/// ```
/// use ss_core::placement::StripingLayout;
/// use ss_types::{DiskId, ObjectId};
///
/// // Figure 4: 8 disks, stride 1, M = 3, starting on disk 0.
/// let x = StripingLayout::new(ObjectId(0), 0, 3, 8, 8, 1);
/// assert_eq!(x.fragment_disk(0, 0), DiskId(0));
/// assert_eq!(x.fragment_disk(1, 0), DiskId(1)); // shifted by the stride
/// assert_eq!(x.fragment_disk(7, 1), DiskId(0)); // wraps around the farm
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripingLayout {
    /// The object this layout describes.
    pub object: ObjectId,
    /// Disk of fragment `X_{0.0}`.
    pub start_disk: u32,
    /// Degree of declustering `M`.
    pub degree: u32,
    /// Number of subobjects `n`.
    pub subobjects: u32,
    /// Total disks `D`.
    pub disks: u32,
    /// Stride `k` (already reduced mod `D`).
    pub stride: u32,
}

impl StripingLayout {
    /// Builds the layout. Panics if the degree exceeds the farm size.
    pub fn new(
        object: ObjectId,
        start_disk: u32,
        degree: u32,
        subobjects: u32,
        disks: u32,
        stride: u32,
    ) -> Self {
        assert!(
            degree >= 1 && degree <= disks,
            "degree {degree} vs {disks} disks"
        );
        assert!(start_disk < disks);
        StripingLayout {
            object,
            start_disk,
            degree,
            subobjects,
            disks,
            stride: stride % disks,
        }
    }

    /// The physical disk holding fragment `X_{sub.frag}`:
    /// `(start + sub·k + frag) mod D`.
    pub fn fragment_disk(&self, sub: u32, frag: u32) -> DiskId {
        debug_assert!(sub < self.subobjects, "subobject {sub} out of range");
        debug_assert!(frag < self.degree, "fragment {frag} out of range");
        let d = u64::from(self.disks);
        let pos = (u64::from(self.start_disk)
            + u64::from(sub) * u64::from(self.stride)
            + u64::from(frag))
            % d;
        DiskId(pos as u32)
    }

    /// The disk holding the first fragment of subobject `sub`.
    pub fn subobject_start_disk(&self, sub: u32) -> DiskId {
        self.fragment_disk(sub, 0)
    }

    /// How many fragments of this object land on each disk (length-`D`
    /// vector), computed analytically in `O(D·M)` using the periodicity of
    /// `i·k mod D`.
    pub fn fragments_per_disk(&self) -> Vec<u32> {
        let d = u64::from(self.disks);
        let k = u64::from(self.stride);
        let n = u64::from(self.subobjects);
        let mut counts = vec![0u32; self.disks as usize];
        if k == 0 {
            // Stationary: every subobject on the same M disks.
            for j in 0..self.degree {
                let disk = ((u64::from(self.start_disk) + u64::from(j)) % d) as usize;
                counts[disk] = self.subobjects;
            }
            return counts;
        }
        let g = crate::frame::gcd(k, d);
        let period = d / g; // i·k mod D cycles with this period
        let full_cycles = n / period;
        let remainder = n % period;
        // For each disk, for each fragment index j, count subobjects i with
        // (start + i·k + j) ≡ disk (mod D).
        for (disk, slot) in counts.iter_mut().enumerate() {
            let mut c = 0u64;
            for j in 0..u64::from(self.degree) {
                // Need i·k ≡ disk − start − j (mod D).
                let rho = (disk as u64 + 2 * d - u64::from(self.start_disk) % d - j % d) % d;
                if !rho.is_multiple_of(g) {
                    continue;
                }
                // Solutions i ≡ i0 (mod period); count those < n.
                let i0 = smallest_solution(k, d, rho);
                c += full_cycles + u64::from(i0 < remainder);
            }
            *slot = u32::try_from(c).expect("fragment count overflow");
        }
        counts
    }

    /// Total fragments of the object.
    pub fn total_fragments(&self) -> u64 {
        u64::from(self.subobjects) * u64::from(self.degree)
    }

    /// The layout inflated by `extra` trailing rotational offsets per
    /// subobject — how parity fragments are addressed: parity fragment
    /// `q` of subobject `i` lives at `(start + i·k + M + q) mod D`,
    /// i.e. fragment `M + q` of the inflated layout. With `extra == 0`
    /// this is the identity.
    pub fn with_parity(&self, extra: u32) -> StripingLayout {
        StripingLayout::new(
            self.object,
            self.start_disk,
            self.degree + extra,
            self.subobjects,
            self.disks,
            self.stride,
        )
    }
}

/// Smallest `i ≥ 0` with `i·k ≡ rho (mod d)`; caller guarantees
/// `gcd(k,d) | rho`.
fn smallest_solution(k: u64, d: u64, rho: u64) -> u64 {
    let g = crate::frame::gcd(k, d);
    let (k1, d1, r1) = (k / g, d / g, rho / g);
    if d1 <= 1 {
        return 0;
    }
    // i ≡ r1 · k1⁻¹ (mod d1); k1 and d1 are coprime, so the inverse
    // exists (extended Euclid).
    let (mut old_r, mut r) = (k1 as i128, d1 as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    let m = d1 as i128;
    let inv = ((old_s % m + m) % m) as u64;
    (r1 % d1) * inv % d1
}

/// One object's placement: address arithmetic plus the cylinder ranges it
/// occupies on each disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacedObject {
    /// The address arithmetic.
    pub layout: StripingLayout,
    /// Cylinder ranges occupied per disk (indexed by disk id; empty for
    /// untouched disks).
    pub ranges: Vec<Vec<CylinderRange>>,
}

impl PlacedObject {
    /// Cylinders this object occupies on `disk`.
    pub fn cylinders_on(&self, disk: DiskId) -> u32 {
        self.ranges[disk.index()].iter().map(|r| r.len).sum()
    }
}

/// Which capacity-accounting backend a [`PlacementMap`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementBackend {
    /// Per-disk first-fit [`CylinderAllocator`]s plus explicit
    /// [`PlacedObject`] cylinder ranges for every resident object. The
    /// reference engine: tests and diagnostics that need real cylinder
    /// addresses use it.
    Materialized,
    /// Closed-form accounting: per-disk *used-cylinder counters* only,
    /// derived from the layout arithmetic. Placement success/failure,
    /// per-disk usage, and skew are identical to the materialized engine
    /// (a [`CylinderAllocator`] allocation succeeds iff enough cylinders
    /// are free, regardless of fragmentation), but no ranges are stored,
    /// and placements whose fragment-count profile is rotation-uniform
    /// commit in O(1) instead of O(D).
    Lazy,
}

/// The per-`(degree, subobjects)` fragment-count profile the lazy backend
/// caches: counts for a start disk of 0 (other starts are rotations).
#[derive(Debug, Clone)]
struct Profile {
    /// `fragments_per_disk()` of the start-0 layout.
    counts: Vec<u32>,
    /// `Some(c)` iff every disk receives exactly `c` fragments — then
    /// placement is rotation-invariant and commits in O(1).
    uniform: Option<u32>,
}

/// The lazy backend's state: counters instead of allocators.
#[derive(Debug, Clone)]
struct LazyState {
    /// Used cylinders contributed equally to *every* disk by
    /// uniform-profile placements.
    uniform_used: u32,
    /// Per-disk used cylinders from non-uniform placements.
    skewed_used: Vec<u32>,
    /// Cached `max(skewed_used)` for the O(1) uniform feasibility check.
    max_skewed_used: u32,
    /// Start-0 profiles keyed by `(degree, subobjects)`.
    profiles: HashMap<(u32, u32), Profile>,
    layouts: HashMap<ObjectId, StripingLayout>,
}

/// The two interchangeable engines (see [`PlacementBackend`]).
#[derive(Debug, Clone)]
enum Engine {
    Materialized {
        allocators: Vec<CylinderAllocator>,
        placed: HashMap<ObjectId, PlacedObject>,
    },
    Lazy(LazyState),
}

/// A placement map over the whole farm: layouts plus capacity accounting.
///
/// [`PlacementMap::new`] builds the **lazy** engine (the hot-path default:
/// full-farm setup is closed-form). [`PlacementMap::new_materialized`]
/// builds the reference engine that additionally tracks real cylinder
/// ranges; the two are observably equivalent for every operation except
/// [`PlacementMap::placed_object`] (see `tests/placement_properties.rs`
/// for the machine-checked equivalence).
#[derive(Debug, Clone)]
pub struct PlacementMap {
    config: StripingConfig,
    cylinders_per_fragment: u32,
    cylinders: u32,
    engine: Engine,
    next_start: u32,
    /// First start of the current round-robin cycle; bumped by one when a
    /// non-coprime stride wraps, so successive cycles cover *all* residues
    /// instead of locking onto multiples of `gcd(D, k)`.
    cycle_base: u32,
}

impl PlacementMap {
    /// Creates an empty map over drives with `cylinders` cylinders each,
    /// using the lazy (counter-based) engine.
    /// `cylinders_per_fragment` is how many cylinders one fragment spans
    /// (1 in the Table 3 configuration, 2 for the §3.1 "two-cylinder
    /// fragments" variant).
    pub fn new(
        config: StripingConfig,
        cylinders: u32,
        cylinders_per_fragment: u32,
    ) -> Result<Self> {
        Self::with_backend(
            config,
            cylinders,
            cylinders_per_fragment,
            PlacementBackend::Lazy,
        )
    }

    /// Like [`PlacementMap::new`] but with the materialized
    /// (cylinder-range) engine.
    pub fn new_materialized(
        config: StripingConfig,
        cylinders: u32,
        cylinders_per_fragment: u32,
    ) -> Result<Self> {
        Self::with_backend(
            config,
            cylinders,
            cylinders_per_fragment,
            PlacementBackend::Materialized,
        )
    }

    /// Creates an empty map with an explicit engine choice.
    pub fn with_backend(
        config: StripingConfig,
        cylinders: u32,
        cylinders_per_fragment: u32,
        backend: PlacementBackend,
    ) -> Result<Self> {
        config.validate()?;
        if cylinders_per_fragment == 0 {
            return Err(Error::InvalidConfig {
                reason: "fragment must span at least one cylinder".into(),
            });
        }
        let engine = match backend {
            PlacementBackend::Materialized => {
                let cyl_capacity = config.fragment / u64::from(cylinders_per_fragment);
                Engine::Materialized {
                    allocators: (0..config.disks)
                        .map(|d| CylinderAllocator::new(DiskId(d), cylinders, cyl_capacity))
                        .collect(),
                    placed: HashMap::new(),
                }
            }
            PlacementBackend::Lazy => Engine::Lazy(LazyState {
                uniform_used: 0,
                skewed_used: vec![0; config.disks as usize],
                max_skewed_used: 0,
                profiles: HashMap::new(),
                layouts: HashMap::new(),
            }),
        };
        Ok(PlacementMap {
            config,
            cylinders_per_fragment,
            cylinders,
            engine,
            next_start: 0,
            cycle_base: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &StripingConfig {
        &self.config
    }

    /// Which engine this map runs.
    pub fn backend(&self) -> PlacementBackend {
        match self.engine {
            Engine::Materialized { .. } => PlacementBackend::Materialized,
            Engine::Lazy(_) => PlacementBackend::Lazy,
        }
    }

    /// Number of placed (resident) objects.
    pub fn resident_count(&self) -> usize {
        match &self.engine {
            Engine::Materialized { placed, .. } => placed.len(),
            Engine::Lazy(s) => s.layouts.len(),
        }
    }

    /// True iff `id` is placed.
    pub fn is_resident(&self, id: ObjectId) -> bool {
        match &self.engine {
            Engine::Materialized { placed, .. } => placed.contains_key(&id),
            Engine::Lazy(s) => s.layouts.contains_key(&id),
        }
    }

    /// The layout of `id`, if resident.
    pub fn layout(&self, id: ObjectId) -> Option<StripingLayout> {
        match &self.engine {
            Engine::Materialized { placed, .. } => placed.get(&id).map(|p| p.layout),
            Engine::Lazy(s) => s.layouts.get(&id).copied(),
        }
    }

    /// The materialized placement of `id` with its cylinder ranges.
    /// `None` if `id` is not resident **or** the map runs the lazy
    /// engine (which stores no ranges).
    pub fn placed_object(&self, id: ObjectId) -> Option<&PlacedObject> {
        match &self.engine {
            Engine::Materialized { placed, .. } => placed.get(&id),
            Engine::Lazy(_) => None,
        }
    }

    /// Iterates over resident object ids (arbitrary order).
    pub fn resident_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        let (a, b) = match &self.engine {
            Engine::Materialized { placed, .. } => (Some(placed.keys().copied()), None),
            Engine::Lazy(s) => (None, Some(s.layouts.keys().copied())),
        };
        a.into_iter().flatten().chain(b.into_iter().flatten())
    }

    /// Places `spec` starting at the next round-robin start disk.
    /// On capacity shortfall the map is left unchanged and an error
    /// identifying the first full disk is returned.
    ///
    /// Start selection balances storage for every stride: a stationary
    /// layout (`k ≡ 0 mod D`) packs objects side by side (VDR-style, each
    /// object's `M` disks directly after the previous one's); a rotating
    /// layout advances by the stride, and when the start cycles back to
    /// its origin (non-coprime strides revisit only `D/gcd(D,k)`
    /// positions) the cycle origin shifts by one so the next round covers
    /// fresh residues.
    pub fn place(&mut self, spec: &ObjectSpec) -> Result<StripingLayout> {
        let d = self.config.disks;
        let k = self.config.stride % d;
        let start = self.next_start;
        let next = if k == 0 {
            (start + spec.degree(self.config.b_disk)) % d
        } else {
            let wrapped = (start + k) % d;
            if wrapped == self.cycle_base {
                self.cycle_base = (self.cycle_base + 1) % d;
                self.cycle_base
            } else {
                wrapped
            }
        };
        let layout = self.place_at(spec, start)?;
        self.next_start = next;
        Ok(layout)
    }

    /// Places `spec` with `X_{0.0}` on `start_disk`.
    pub fn place_at(&mut self, spec: &ObjectSpec, start_disk: u32) -> Result<StripingLayout> {
        if self.is_resident(spec.id) {
            return Err(Error::InvalidState {
                reason: format!("object {} is already placed", spec.id),
            });
        }
        let degree = spec.degree(self.config.b_disk);
        // Parity inflates the per-subobject footprint; the whole inflated
        // stripe must fit the farm.
        let parity = self.config.parity_fragments(degree);
        if degree + parity > self.config.disks {
            return Err(Error::BandwidthUnsatisfiable {
                object: spec.id,
                required: spec.media.display_bandwidth,
                available: self.config.b_disk * u64::from(self.config.disks),
            });
        }
        let layout = StripingLayout::new(
            spec.id,
            start_disk % self.config.disks,
            degree,
            spec.subobjects,
            self.config.disks,
            self.config.stride,
        );
        // Capacity is charged for data *and* parity fragments; the parity
        // offsets follow the same staggered arithmetic, so the inflated
        // layout's fragment profile is exactly the storage bill.
        let cap_layout = layout.with_parity(parity);
        let cpf = self.cylinders_per_fragment;
        match &mut self.engine {
            Engine::Materialized { allocators, placed } => {
                let per_disk = cap_layout.fragments_per_disk();
                // Feasibility check before mutating any allocator.
                for (d, &frags) in per_disk.iter().enumerate() {
                    let need = frags * cpf;
                    let have = allocators[d].free_cylinders();
                    if have < need {
                        return Err(Error::DiskFull {
                            disk: DiskId(d as u32),
                            requested: self.config.fragment * u64::from(frags),
                            available: allocators[d].free_bytes(),
                        });
                    }
                }
                let mut ranges = vec![Vec::new(); self.config.disks as usize];
                for (d, &frags) in per_disk.iter().enumerate() {
                    let need = frags * cpf;
                    if need > 0 {
                        ranges[d] = allocators[d]
                            .allocate(need)
                            .expect("feasibility was checked");
                    }
                }
                placed.insert(spec.id, PlacedObject { layout, ranges });
            }
            Engine::Lazy(state) => {
                let cylinders = self.cylinders;
                let cyl_capacity = self.config.fragment / u64::from(cpf);
                let fragment = self.config.fragment;
                let profile = state.profile(&cap_layout);
                match profile.uniform {
                    Some(c) => {
                        // Rotation-invariant: every disk takes the same
                        // hit, so one comparison against the fullest disk
                        // decides feasibility, and commitment is a single
                        // counter bump.
                        let need = c * cpf;
                        if state.uniform_used + state.max_skewed_used + need > cylinders {
                            // Identify the first over-full disk for the
                            // error (identical to the materialized scan).
                            let d = state
                                .skewed_used
                                .iter()
                                .position(|&s| state.uniform_used + s + need > cylinders)
                                .expect("some disk is over the max");
                            let free = cylinders - state.uniform_used - state.skewed_used[d];
                            return Err(Error::DiskFull {
                                disk: DiskId(d as u32),
                                requested: fragment * u64::from(c),
                                available: cyl_capacity * u64::from(free),
                            });
                        }
                        state.uniform_used += need;
                    }
                    None => {
                        let counts = profile.counts.clone();
                        let disks = self.config.disks as usize;
                        let start = layout.start_disk as usize;
                        // counts are for start 0; start s rotates them:
                        // frags(d) = counts[(d - s) mod D].
                        let frags_on = |d: usize| counts[(d + disks - start) % disks];
                        for (d, &skew) in state.skewed_used.iter().enumerate() {
                            let need = frags_on(d) * cpf;
                            if state.uniform_used + skew + need > cylinders {
                                let free = cylinders - state.uniform_used - skew;
                                return Err(Error::DiskFull {
                                    disk: DiskId(d as u32),
                                    requested: fragment * u64::from(frags_on(d)),
                                    available: cyl_capacity * u64::from(free),
                                });
                            }
                        }
                        for (d, skew) in state.skewed_used.iter_mut().enumerate() {
                            *skew += frags_on(d) * cpf;
                            state.max_skewed_used = state.max_skewed_used.max(*skew);
                        }
                    }
                }
                state.layouts.insert(spec.id, layout);
            }
        }
        Ok(layout)
    }

    /// Removes `id`, returning its cylinders to the free pools.
    pub fn remove(&mut self, id: ObjectId) -> Result<()> {
        let cpf = self.cylinders_per_fragment;
        let parity_group = self.config.parity_group;
        match &mut self.engine {
            Engine::Materialized { allocators, placed } => {
                let obj = placed.remove(&id).ok_or(Error::NotResident(id))?;
                for (d, runs) in obj.ranges.into_iter().enumerate() {
                    for run in runs {
                        allocators[d].free(run);
                    }
                }
            }
            Engine::Lazy(state) => {
                let layout = state.layouts.remove(&id).ok_or(Error::NotResident(id))?;
                // Refund exactly what place_at charged: the parity-inflated
                // fragment profile.
                let parity = match parity_group {
                    Some(g) => layout.degree.div_ceil(g),
                    None => 0,
                };
                let cap_layout = layout.with_parity(parity);
                let profile = state.profile(&cap_layout);
                match profile.uniform {
                    Some(c) => state.uniform_used -= c * cpf,
                    None => {
                        let counts = profile.counts.clone();
                        let disks = self.config.disks as usize;
                        let start = layout.start_disk as usize;
                        for (d, skew) in state.skewed_used.iter_mut().enumerate() {
                            *skew -= counts[(d + disks - start) % disks] * cpf;
                        }
                        state.max_skewed_used =
                            state.skewed_used.iter().copied().max().unwrap_or(0);
                    }
                }
            }
        }
        Ok(())
    }

    /// Free cylinders per disk.
    pub fn free_cylinders(&self) -> Vec<u32> {
        match &self.engine {
            Engine::Materialized { allocators, .. } => {
                allocators.iter().map(|a| a.free_cylinders()).collect()
            }
            Engine::Lazy(s) => s
                .skewed_used
                .iter()
                .map(|&skew| self.cylinders - s.uniform_used - skew)
                .collect(),
        }
    }

    /// Used cylinders per disk.
    pub fn used_cylinders(&self) -> Vec<u32> {
        match &self.engine {
            Engine::Materialized { allocators, .. } => {
                allocators.iter().map(|a| a.used_cylinders()).collect()
            }
            Engine::Lazy(s) => s
                .skewed_used
                .iter()
                .map(|&skew| s.uniform_used + skew)
                .collect(),
        }
    }

    /// The storage-balance ratio `max/mean` of per-disk usage (1.0 is
    /// perfectly balanced; large values betray data skew).
    pub fn skew_ratio(&self) -> f64 {
        let used = self.used_cylinders();
        let max = used.iter().copied().max().unwrap_or(0) as f64;
        let mean = used.iter().map(|&u| u as f64).sum::<f64>() / used.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

impl LazyState {
    /// The cached start-0 fragment profile for `layout`'s
    /// `(degree, subobjects)` class, computing it on first use.
    /// `fragments_per_disk` of a start-`s` layout is the start-0 profile
    /// rotated by `s`, so one O(D·M) computation serves every object of
    /// the class regardless of where it starts.
    fn profile(&mut self, layout: &StripingLayout) -> &Profile {
        let key = (layout.degree, layout.subobjects);
        self.profiles.entry(key).or_insert_with(|| {
            let base = StripingLayout::new(
                layout.object,
                0,
                layout.degree,
                layout.subobjects,
                layout.disks,
                layout.stride,
            );
            let counts = base.fragments_per_disk();
            let uniform = match (counts.iter().min(), counts.iter().max()) {
                (Some(&lo), Some(&hi)) if lo == hi => Some(lo),
                _ => None,
            };
            Profile { counts, uniform }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MediaType;

    fn spec(id: u32, mbps: u64, subobjects: u32) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId(id),
            MediaType::new(format!("m{mbps}"), Bandwidth::mbps(mbps)),
            subobjects,
        )
    }

    /// Figure 1: 9 disks, M = 3, simple striping (k = 3).
    #[test]
    fn figure1_simple_striping_layout() {
        let l = StripingLayout::new(ObjectId(0), 0, 3, 6, 9, 3);
        // Subobject 0 on cluster 0 = disks 0,1,2; subobject 1 on 3,4,5; ...
        assert_eq!(l.fragment_disk(0, 0), DiskId(0));
        assert_eq!(l.fragment_disk(0, 2), DiskId(2));
        assert_eq!(l.fragment_disk(1, 0), DiskId(3));
        assert_eq!(l.fragment_disk(2, 1), DiskId(7));
        assert_eq!(l.fragment_disk(3, 0), DiskId(0)); // wraps to cluster 0
    }

    /// Figure 4: 8 disks, stride 1.
    #[test]
    fn figure4_staggered_layout() {
        let l = StripingLayout::new(ObjectId(0), 0, 3, 8, 8, 1);
        assert_eq!(l.fragment_disk(0, 0), DiskId(0));
        assert_eq!(l.fragment_disk(1, 0), DiskId(1));
        assert_eq!(l.fragment_disk(5, 2), DiskId(7));
        assert_eq!(l.fragment_disk(7, 0), DiskId(7));
        assert_eq!(l.fragment_disk(7, 1), DiskId(0)); // wraps
    }

    /// Figure 5: 12 disks, stride 1, X (M=3) starting at disk 4.
    #[test]
    fn figure5_object_x_positions() {
        let x = StripingLayout::new(ObjectId(0), 4, 3, 13, 12, 1);
        // Row "Subobject 0": X0.0 X0.1 X0.2 on disks 4,5,6.
        assert_eq!(x.fragment_disk(0, 0), DiskId(4));
        assert_eq!(x.fragment_disk(0, 2), DiskId(6));
        // Row 8: X8.0 on disk 0 (4+8 = 12 ≡ 0).
        assert_eq!(x.fragment_disk(8, 0), DiskId(0));
        // Z (M=2) starts at disk 7: Z0.0, Z0.1 on 7,8.
        let z = StripingLayout::new(ObjectId(1), 7, 2, 13, 12, 1);
        assert_eq!(z.fragment_disk(0, 0), DiskId(7));
        assert_eq!(z.fragment_disk(0, 1), DiskId(8));
        // Y (M=4) starts at disk 0: Y4.2 on disk 6 (0+4·1+2).
        let y = StripingLayout::new(ObjectId(2), 0, 4, 13, 12, 1);
        assert_eq!(y.fragment_disk(4, 2), DiskId(6));
    }

    #[test]
    fn fragments_per_disk_matches_brute_force() {
        for (d, k, m, n, start) in [
            (9u32, 3u32, 3u32, 17u32, 2u32),
            (12, 1, 4, 50, 7),
            (12, 4, 3, 29, 1),
            (10, 10, 4, 33, 6),
            (10, 0, 2, 5, 9),
            (7, 5, 3, 100, 3),
            (1000, 5, 5, 3000, 0),
        ] {
            let l = StripingLayout::new(ObjectId(0), start, m, n, d, k);
            let analytic = l.fragments_per_disk();
            let mut brute = vec![0u32; d as usize];
            for i in 0..n {
                for j in 0..m {
                    brute[l.fragment_disk(i, j).index()] += 1;
                }
            }
            assert_eq!(analytic, brute, "d={d} k={k} m={m} n={n} start={start}");
        }
    }

    #[test]
    fn table3_placement_is_perfectly_balanced() {
        // D=1000, k=5, M=5, n=3000: each disk gets exactly 15 fragments.
        let l = StripingLayout::new(ObjectId(0), 0, 5, 3000, 1000, 5);
        let per = l.fragments_per_disk();
        assert!(per.iter().all(|&c| c == 15), "skewed: {:?}", &per[..10]);
        assert_eq!(l.total_fragments(), 15_000);
    }

    #[test]
    fn stationary_layout_concentrates_on_m_disks() {
        let l = StripingLayout::new(ObjectId(0), 3, 4, 100, 10, 10);
        let per = l.fragments_per_disk();
        for (d, &c) in per.iter().enumerate() {
            if (3..7).contains(&d) {
                assert_eq!(c, 100);
            } else {
                assert_eq!(c, 0);
            }
        }
    }

    fn map(disks: u32, stride: u32, cylinders: u32) -> PlacementMap {
        let config = StripingConfig {
            disks,
            stride,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        };
        PlacementMap::new(config, cylinders, 1).unwrap()
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let mut m = map(12, 1, 100);
        let s = spec(0, 60, 24); // M = 3
        m.place_at(&s, 4).unwrap();
        assert!(m.is_resident(ObjectId(0)));
        assert_eq!(m.resident_count(), 1);
        let used: u32 = m.used_cylinders().iter().sum();
        assert_eq!(used, 72); // 24 subobjects × 3 fragments
        m.remove(ObjectId(0)).unwrap();
        assert_eq!(m.resident_count(), 0);
        assert!(m.used_cylinders().iter().all(|&u| u == 0));
    }

    #[test]
    fn double_place_and_missing_remove_fail() {
        let mut m = map(12, 1, 100);
        let s = spec(0, 60, 12);
        m.place_at(&s, 0).unwrap();
        assert!(matches!(m.place_at(&s, 3), Err(Error::InvalidState { .. })));
        assert_eq!(m.remove(ObjectId(9)), Err(Error::NotResident(ObjectId(9))));
    }

    #[test]
    fn capacity_check_is_atomic() {
        // 12 disks × 10 cylinders = 120 fragments of space; an object
        // needing 144 fragments must fail leaving the map untouched.
        let mut m = map(12, 1, 10);
        let s = spec(0, 60, 48); // 48 × 3 = 144 fragments
        let before = m.free_cylinders();
        assert!(matches!(m.place_at(&s, 0), Err(Error::DiskFull { .. })));
        assert_eq!(m.free_cylinders(), before);
    }

    #[test]
    fn round_robin_start_advances_by_stride() {
        let mut m = map(12, 1, 1000);
        let a = spec(0, 40, 6);
        let b = spec(1, 40, 6);
        m.place(&a).unwrap();
        m.place(&b).unwrap();
        assert_eq!(m.layout(ObjectId(0)).unwrap().start_disk, 0);
        assert_eq!(m.layout(ObjectId(1)).unwrap().start_disk, 1);
    }

    #[test]
    fn oversized_degree_is_rejected() {
        let mut m = map(4, 1, 100);
        let s = spec(0, 200, 10); // M = 10 > 4 disks
        assert!(matches!(
            m.place_at(&s, 0),
            Err(Error::BandwidthUnsatisfiable { .. })
        ));
    }

    #[test]
    fn skew_ratio_balanced_vs_stationary() {
        // Balanced: k=1.
        let mut m = map(10, 1, 1000);
        m.place_at(&spec(0, 40, 50), 0).unwrap(); // M=2, 100 fragments
        assert!(m.skew_ratio() < 1.11, "ratio {}", m.skew_ratio());
        // Stationary: k=10 ⇒ everything on 2 disks.
        let mut m = map(10, 10, 1000);
        m.place_at(&spec(0, 40, 50), 0).unwrap();
        assert!(m.skew_ratio() > 4.0, "ratio {}", m.skew_ratio());
    }

    #[test]
    fn placed_object_cylinder_accounting() {
        let config = StripingConfig {
            disks: 9,
            stride: 3,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        };
        let mut m = PlacementMap::new_materialized(config, 100, 1).unwrap();
        m.place_at(&spec(0, 60, 9), 0).unwrap(); // M=3, simple striping
        let p = m.placed_object(ObjectId(0)).unwrap();
        // 9 subobjects × 3 fragments over 9 disks = 3 per disk.
        for d in 0..9 {
            assert_eq!(p.cylinders_on(DiskId(d)), 3);
        }
    }

    #[test]
    fn lazy_is_the_default_and_stores_no_ranges() {
        let mut m = map(12, 1, 100);
        assert_eq!(m.backend(), PlacementBackend::Lazy);
        m.place_at(&spec(0, 60, 12), 0).unwrap();
        assert!(m.is_resident(ObjectId(0)));
        assert!(m.placed_object(ObjectId(0)).is_none());
        assert!(m.layout(ObjectId(0)).is_some());
    }

    /// The lazy engine's DiskFull error carries the exact same disk,
    /// requested, and available fields as the materialized scan.
    #[test]
    fn lazy_disk_full_error_matches_materialized() {
        let config = StripingConfig {
            disks: 12,
            stride: 1,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        };
        let mut lazy = PlacementMap::new(config.clone(), 10, 1).unwrap();
        let mut mat = PlacementMap::new_materialized(config, 10, 1).unwrap();
        // Partially fill, then overflow with a big object.
        let small = spec(0, 60, 20); // 60 fragments
        lazy.place_at(&small, 0).unwrap();
        mat.place_at(&small, 0).unwrap();
        let big = spec(1, 60, 48); // 144 fragments > remaining 60
        let a = lazy.place_at(&big, 3).unwrap_err();
        let b = mat.place_at(&big, 3).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, Error::DiskFull { .. }));
        assert_eq!(lazy.used_cylinders(), mat.used_cylinders());
    }

    fn parity_map(disks: u32, stride: u32, cylinders: u32, group: u32) -> PlacementMap {
        let config = StripingConfig {
            disks,
            stride,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: Some(group),
        };
        PlacementMap::new(config, cylinders, 1).unwrap()
    }

    #[test]
    fn parity_inflates_storage_by_one_fragment_per_group() {
        // M = 3, g = 3: one parity fragment per subobject — storage bill
        // 4/3 of the data, charged and refunded symmetrically.
        let mut m = parity_map(12, 1, 100, 3);
        m.place_at(&spec(0, 60, 24), 4).unwrap();
        let used: u32 = m.used_cylinders().iter().sum();
        assert_eq!(used, 24 * (3 + 1));
        m.remove(ObjectId(0)).unwrap();
        assert!(m.used_cylinders().iter().all(|&u| u == 0));
        // g = 2 on the same object: ceil(3/2) = 2 parity fragments.
        let mut m = parity_map(12, 1, 100, 2);
        m.place_at(&spec(0, 60, 24), 4).unwrap();
        let used: u32 = m.used_cylinders().iter().sum();
        assert_eq!(used, 24 * (3 + 2));
    }

    #[test]
    fn parity_capacity_agrees_across_backends() {
        let config = StripingConfig {
            disks: 9,
            stride: 3,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: Some(3),
        };
        let mut lazy = PlacementMap::new(config.clone(), 50, 1).unwrap();
        let mut mat = PlacementMap::new_materialized(config, 50, 1).unwrap();
        for (i, start) in [(0u32, 0u32), (1, 3), (2, 7)] {
            let s = spec(i, 60, 9); // M = 3 + 1 parity
            lazy.place_at(&s, start).unwrap();
            mat.place_at(&s, start).unwrap();
        }
        assert_eq!(lazy.used_cylinders(), mat.used_cylinders());
        lazy.remove(ObjectId(1)).unwrap();
        mat.remove(ObjectId(1)).unwrap();
        assert_eq!(lazy.used_cylinders(), mat.used_cylinders());
    }

    #[test]
    fn parity_stripe_must_fit_the_farm() {
        // M = 3 data + 3 parity (g = 1) needs 6 offsets; a 5-disk farm
        // cannot hold the inflated stripe.
        let mut m = parity_map(5, 1, 100, 1);
        assert!(matches!(
            m.place_at(&spec(0, 60, 10), 0),
            Err(Error::BandwidthUnsatisfiable { .. })
        ));
    }

    #[test]
    fn zero_parity_group_is_rejected() {
        let config = StripingConfig {
            disks: 12,
            stride: 1,
            fragment: Bytes::new(1_512_000),
            b_disk: Bandwidth::mbps(20),
            parity_group: Some(0),
        };
        assert!(matches!(
            config.validate(),
            Err(Error::InvalidConfig { .. })
        ));
    }

    /// A stationary (non-uniform-profile) layout goes through the lazy
    /// engine's skewed path and still accounts exactly.
    #[test]
    fn lazy_skewed_path_accounts_exactly() {
        let mut lazy = map(10, 10, 1000); // k ≡ 0 mod D: stationary
        let mut reference = {
            let config = StripingConfig {
                disks: 10,
                stride: 10,
                fragment: Bytes::new(1_512_000),
                b_disk: Bandwidth::mbps(20),
                parity_group: None,
            };
            PlacementMap::new_materialized(config, 1000, 1).unwrap()
        };
        for (i, start) in [(0u32, 0u32), (1, 4), (2, 7)] {
            let s = spec(i, 40, 30); // M=2, stationary pair of disks
            lazy.place_at(&s, start).unwrap();
            reference.place_at(&s, start).unwrap();
        }
        assert_eq!(lazy.used_cylinders(), reference.used_cylinders());
        assert_eq!(lazy.skew_ratio(), reference.skew_ratio());
        lazy.remove(ObjectId(1)).unwrap();
        reference.remove(ObjectId(1)).unwrap();
        assert_eq!(lazy.used_cylinders(), reference.used_cylinders());
    }
}
