//! A movie-on-demand server session: the paper's §4 scenario at reduced
//! scale. Runs the same workload through simple striping and through the
//! virtual-data-replication baseline and prints the comparison — the
//! Figure 8 experiment in miniature.
//!
//! Run with: `cargo run --release --example movie_on_demand`

use staggered_striping::prelude::*;
use staggered_striping::server::experiment::run_batch;
use staggered_striping::server::metrics::format_table;
use staggered_striping::server::vdr::vdr_config_for;

fn main() -> Result<()> {
    // A 60-disk farm with 150 half-hour-ish movies, of which the farm can
    // hold 120; 48 subscribers with skewed tastes.
    let build = |stations: u32| -> Vec<ServerConfig> {
        let mut striping = ServerConfig::paper_striping(stations, 8.0, 2026);
        striping.disks = 60;
        striping.objects = 150;
        striping.subobjects = 600; // 6-minute objects: quick demo runs
        striping.warmup = SimDuration::from_secs(1800);
        striping.measure = SimDuration::from_secs(4 * 3600);
        let mut vdr = striping.clone();
        vdr.scheme = Scheme::Vdr {
            vdr: vdr_config_for(&striping),
        };
        vdr.materialize = MaterializeMode::AfterFull;
        vec![striping, vdr]
    };

    println!("movie-on-demand demo: 60 disks, 150 movies (farm holds 120),");
    println!("geometric popularity (mean rank 8), 4 simulated hours measured\n");

    let mut all = Vec::new();
    for stations in [8u32, 24, 48] {
        let configs = build(stations);
        for c in &configs {
            c.validate()?;
        }
        let reports = run_batch(configs, 2);
        all.extend(reports);
    }
    println!("{}", format_table(&all));

    for pair in all.chunks(2) {
        let (s, v) = (&pair[0], &pair[1]);
        let gain = 100.0 * (s.displays_per_hour - v.displays_per_hour) / v.displays_per_hour;
        println!(
            "{:>3} subscribers: striping {:>7.1}/hr vs VDR {:>7.1}/hr  (+{gain:.0}%)",
            s.stations, s.displays_per_hour, v.displays_per_hour
        );
    }
    println!("\nshape: striping reaches the farm's aggregate-bandwidth ceiling and");
    println!("stays there; VDR trails it at every load because hot titles serialize");
    println!("on their clusters and replica copies burn cluster time and disk space.");
    Ok(())
}
