//! Quickstart: place one movie with staggered striping, admit a display,
//! and walk its first few time intervals.
//!
//! Run with: `cargo run --example quickstart`

use staggered_striping::prelude::*;

fn main() -> Result<()> {
    // A small farm: 12 disks of the paper's Table 3 type, stride 1.
    let disk = DiskParams::table3();
    let config = StripingConfig {
        disks: 12,
        stride: 1,
        fragment: disk.cylinder_capacity,
        b_disk: disk.effective_bandwidth(disk.cylinder_capacity),
        parity_group: None,
    };
    println!(
        "farm: {} disks, fragment {}, effective B_disk {}",
        config.disks, config.fragment, config.b_disk
    );

    // One 60 mbps movie (degree of declustering M = 3) of 24 subobjects.
    let movie = ObjectSpec::new(
        ObjectId(0),
        MediaType::new("demo movie", Bandwidth::mbps(60)),
        24,
    );
    println!(
        "movie: {} needs M = {} disks per interval, {} total, display time {}",
        movie.media.name,
        movie.degree(config.b_disk),
        movie.size(config.b_disk, config.fragment),
        movie.display_time(config.b_disk, config.fragment),
    );

    // Place it: every fragment gets a (disk, cylinder) address.
    let mut placement = PlacementMap::new(config.clone(), disk.cylinders, 1)?;
    let layout = placement.place_at(&movie, 4)?;
    println!("\nfirst three subobjects land on:");
    for sub in 0..3 {
        let disks: Vec<String> = (0..layout.degree)
            .map(|f| layout.fragment_disk(sub, f).to_string())
            .collect();
        println!("  subobject {sub}: {}", disks.join(", "));
    }

    // Admit a display through the rotating virtual-disk frame.
    let mut scheduler = IntervalScheduler::new(VirtualFrame::new(config.disks, config.stride));
    let grant = scheduler.try_admit(
        0,
        movie.id,
        layout.start_disk,
        layout.degree,
        movie.subobjects,
        AdmissionPolicy::Contiguous,
    )?;
    println!(
        "\nadmitted: virtual disks {:?}, delivery starts at interval {}",
        grant.virtual_disks, grant.delivery_start
    );

    // Walk the first intervals: the physical disks shift right by the
    // stride each interval while the virtual assignment stays fixed.
    println!("\ninterval -> physical disks read this interval:");
    for t in 0..5u64 {
        let phys: Vec<String> = grant
            .virtual_disks
            .iter()
            .map(|&v| format!("disk{}", scheduler.frame().physical(v, t)))
            .collect();
        println!("  t={t}: {}", phys.join(", "));
    }
    println!("\n(compare: subobject t lives on exactly those disks — no hiccups.)");
    Ok(())
}
