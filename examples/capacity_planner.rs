//! A capacity planner built on the analytic models: given a desired
//! concurrent-stream mix, compute the farm you must buy — disks, buffer
//! memory, startup latency, and the tertiary ceiling — without running a
//! simulation.
//!
//! Run with: `cargo run --example capacity_planner`

use staggered_striping::core::low_bandwidth::logical_fit;
use staggered_striping::disk::{min_buffer_memory, DiskParams};
use staggered_striping::prelude::*;
use staggered_striping::server::analysis::{miss_probability, striping_model};
use staggered_striping::workload::Popularity;

fn main() {
    let disk = DiskParams::table3();
    let fragment = disk.cylinder_capacity;
    let b_disk = disk.effective_bandwidth(fragment);
    let interval = fragment.transfer_time(b_disk);

    // The service we want to run: concurrent streams by media type.
    let wanted = [
        ("HD feature film", Bandwidth::mbps(100), 120u32),
        ("NTSC broadcast", Bandwidth::mbps(45), 60),
        ("news clips (half-disk)", Bandwidth::mbps(10), 40),
    ];

    println!("capacity plan on Table-3-class disks ({b_disk} effective, {interval} intervals)\n");
    println!(
        "{:<24} {:>8} {:>8} {:>14}",
        "media", "streams", "M_X", "disk-intervals"
    );
    let mut disk_demand = 0.0;
    for (name, rate, streams) in wanted {
        // Low-bandwidth media ride logical half-disks (§3.2.3).
        let fit = logical_fit(rate, b_disk, 2);
        let per_stream = fit.units as f64 / 2.0; // halves → physical disks
        disk_demand += per_stream * f64::from(streams);
        println!(
            "{name:<24} {streams:>8} {:>8.1} {:>14.1}",
            per_stream,
            per_stream * f64::from(streams)
        );
    }
    // Headroom: admission needs slack to keep startup latency low; plan
    // at 85 % occupancy.
    let disks_needed = (disk_demand / 0.85).ceil() as u32;
    println!(
        "\n=> {disks_needed} disks (at 85% planned occupancy; {disk_demand:.0} busy on average)"
    );

    // Storage: how many of the catalog's objects stay resident, and what
    // that means for tertiary traffic.
    let objects = 2000u32;
    let subobjects = 3000u32;
    let per_object_cylinders = u64::from(subobjects) * 5; // M=5 fragments
    let capacity_objects =
        (u64::from(disks_needed) * u64::from(disk.cylinders) / per_object_cylinders) as usize;
    let popularity = Popularity::TruncatedGeometric { mean: 20.0 };
    let q = miss_probability(&popularity, objects as usize, capacity_objects);
    println!(
        "storage: {} resident objects of {objects}; miss probability {:.4}%",
        capacity_objects.min(objects as usize),
        q * 100.0
    );

    // Memory: equation (1) per disk, plus the §5 average-case buffer.
    let eq1 = min_buffer_memory(&disk, fragment, Bytes::kilobytes(4));
    let avg_buf = disk.average_case_buffer(fragment);
    println!(
        "memory: {} per disk to mask T_switch (eq. 1); +{} to run at the\n\
         average-case rate ({:.2} vs {:.2} mbps effective)",
        eq1,
        avg_buf,
        disk.effective_bandwidth_average_case(fragment)
            .as_mbps_f64(),
        b_disk.as_mbps_f64()
    );

    // Startup latency: bounded by one rotation of the virtual frame.
    let worst_wait = interval * u64::from(disks_needed);
    println!(
        "startup latency: <= one rotation = {worst_wait} at stride 1 (typically\n\
         a few intervals at planned occupancy)"
    );

    // End-to-end sanity via the closed-form model at the implied load.
    let mut cfg = ServerConfig::paper_striping(220, 20.0, 0);
    cfg.disks = disks_needed;
    let model = striping_model(&cfg, 220);
    println!(
        "\nmodel check at 220 stations: disk bound {:.0}/hr, tertiary bound {:.0}/hr,\n\
         predicted {:.0} displays/hour",
        model.disk_bound, model.tertiary_bound, model.predicted
    );
}
