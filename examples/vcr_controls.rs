//! VCR features (§3.2.5): rewind, fast-forward, and fast-forward-with-scan
//! through a decimated replica object.
//!
//! Run with: `cargo run --example vcr_controls`

use staggered_striping::core::vcr::{
    plan_seek, FastForwardReplica, PlaybackState, SeekPlan, VcrSession,
};
use staggered_striping::prelude::*;

fn main() {
    let b_disk = Bandwidth::mbps(20);
    let fragment = Bytes::new(1_512_000);
    let movie = ObjectSpec::new(ObjectId(0), MediaType::table3(), 3000);
    let interval = movie.interval(b_disk, fragment);
    println!(
        "movie: {} subobjects, one interval = {interval}, full display = {}",
        movie.subobjects,
        movie.display_time(b_disk, fragment)
    );

    // --- plain seeks (no picture) ---------------------------------------
    println!("\nseeks on the Table 3 farm (D = 1000, k = 5), currently at subobject 1200:");
    for (what, target, idle) in [
        ("fast-forward +300", 1500u32, false),
        ("fast-forward +300 (idle disks aligned)", 1500, true),
        ("rewind -100", 1100, false),
        ("jump to start", 0, false),
    ] {
        let plan = plan_seek(1000, 5, 1200, target, 3000, idle);
        match plan {
            SeekPlan::Immediate => println!("  {what:<40} -> switch immediately"),
            SeekPlan::Rotate { wait_intervals } => println!(
                "  {what:<40} -> wait {wait_intervals} intervals ({})",
                interval * wait_intervals
            ),
        }
    }

    // --- fast-forward with scan ------------------------------------------
    println!("\nfast-forward WITH SCAN uses a decimated replica (every 16th frame):");
    let replica = FastForwardReplica::derive(&movie, ObjectId(1), 16);
    println!(
        "  replica: {} subobjects ({:.1}% of the movie's storage), {}x speedup",
        replica.spec.subobjects,
        replica.relative_size(&movie, b_disk, fragment) * 100.0,
        replica.speedup
    );
    let pressed_at = 1200u32;
    let entry = replica.entry_point(pressed_at);
    println!("  scan pressed at subobject {pressed_at} -> replica enters at {entry}");
    let stopped_at = entry + 20; // user scans for 20 replica subobjects
    let resume = replica.resume_point(stopped_at, &movie);
    println!(
        "  scan stopped at replica subobject {stopped_at} -> normal playback resumes at {resume}"
    );
    println!(
        "  perceived scan speed: {}x ({} movie subobjects covered in {} intervals)",
        replica.speedup,
        (stopped_at - entry) * replica.decimation,
        stopped_at - entry
    );

    // --- a full session --------------------------------------------------
    println!("\na complete viewer session (VcrSession):");
    let mut session = VcrSession::new(movie.clone(), replica.clone());
    for _ in 0..600 {
        session.tick(); // six minutes of playback
    }
    println!(
        "  after 600 intervals of playback: position {}",
        session.position()
    );
    session.press_scan();
    for _ in 0..30 {
        session.tick(); // 30 intervals of 16x scanning
    }
    session.release_scan();
    println!(
        "  after 30 intervals of 16x scan:   position {} ({:?})",
        session.position(),
        session.state()
    );
    let plan = session.seek(2500, 1000, 5, false);
    println!("  seek to 2500: {plan:?}, now at {}", session.position());
    while session.state() != PlaybackState::Finished {
        session.tick();
    }
    println!("  played to the end: position {}", session.position());
}
