//! Regenerates the paper's layout figures as ASCII tables directly from
//! the placement arithmetic:
//!
//! * Figure 1 — simple striping, 9 disks, `M = 3`;
//! * Figure 3 — the cluster schedule for three concurrent displays;
//! * Figure 4 — staggered striping, 8 disks, stride 1;
//! * Figure 5 — a mixed-media database (M = 2, 3, 4) on 12 disks.
//!
//! Run with: `cargo run --example layout_gallery`

use staggered_striping::core::render::{cluster_schedule, format_cluster_schedule, layout_grid};
use staggered_striping::prelude::*;

fn main() {
    println!("=== Figure 1: simple striping (9 disks, M = 3, k = M) ===\n");
    let x = StripingLayout::new(ObjectId(0), 0, 3, 9, 9, 3);
    println!("{}", layout_grid(&[x], &["X"], 4));

    println!("=== Figure 3: cluster schedule, three displays (X ends early) ===\n");
    let table = cluster_schedule(
        3,
        6,
        &[
            ("X", 1, 1, 3), // X(i+2) is X's last subobject
            ("Y", 2, 1, 7),
            ("Z", 0, 1, 7),
        ],
    );
    println!("{}", format_cluster_schedule(&table));

    println!("=== Figure 4: staggered striping (8 disks, M = 3, k = 1) ===\n");
    let x = StripingLayout::new(ObjectId(0), 0, 3, 8, 8, 1);
    println!("{}", layout_grid(&[x], &["X"], 8));

    println!("=== Figure 5: mixed media on 12 disks (k = 1) ===");
    println!("    Y: 80 mbps (M = 4) from disk 0; X: 60 mbps (M = 3) from disk 4;");
    println!("    Z: 40 mbps (M = 2) from disk 7\n");
    let y = StripingLayout::new(ObjectId(0), 0, 4, 13, 12, 1);
    let x = StripingLayout::new(ObjectId(1), 4, 3, 13, 12, 1);
    let z = StripingLayout::new(ObjectId(2), 7, 2, 13, 12, 1);
    println!("{}", layout_grid(&[y, x, z], &["Y", "X", "Z"], 13));

    println!("note: every row uses disjoint disks per subobject index, and each");
    println!("display's disk set shifts right by the stride each time interval.");
}
