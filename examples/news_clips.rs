//! Low-bandwidth objects (§3.2.3): a news/audio-clip service whose media
//! rates sit *below* the disk rate, served on logical half-disks with the
//! Figure 7 pairing schedule.
//!
//! Run with: `cargo run --example news_clips`

use staggered_striping::core::low_bandwidth::{
    fit, logical_fit, GroupSchedule, PairingSchedule, SlotAction,
};
use staggered_striping::prelude::*;

fn main() {
    let b_disk = Bandwidth::mbps(20);
    let clips = [
        ("stereo CD audio", Bandwidth::from_mbps_f64(1.4)),
        ("news clip (low-res)", Bandwidth::mbps(10)),
        ("slow-scan weather cam", Bandwidth::mbps(5)),
        ("near-disk-rate preview", Bandwidth::mbps(30)),
    ];

    println!("allocation waste, whole disks vs logical half-disks (B_disk = 20 mbps):\n");
    println!(
        "{:<24} {:>9} {:>9} | {:>10} {:>9}",
        "clip", "disks", "waste", "half-disks", "waste"
    );
    for (name, rate) in clips {
        let whole = fit(rate, b_disk);
        let halves = logical_fit(rate, b_disk, 2);
        println!(
            "{name:<24} {:>9} {:>8.1}% | {:>10} {:>8.1}%",
            whole.units,
            whole.wasted * 100.0,
            halves.units,
            halves.wasted * 100.0
        );
    }

    println!("\nFigure 7: pairing two half-rate clips on one disk stream");
    println!("(X read in the first half of each interval, Y in the second; each");
    println!("object's second half is buffered to bridge into the next half):\n");
    let sched = PairingSchedule::pair(4);
    for (h, actions) in sched.half_intervals.iter().enumerate() {
        let label: Vec<String> = actions
            .iter()
            .map(|a| match a {
                SlotAction::ReadAndTransmit { obj, sub } => {
                    format!("read+xmit {}{sub}", if *obj == 0 { 'X' } else { 'Y' })
                }
                SlotAction::TransmitBuffered { obj, sub } => {
                    format!("xmit-buf {}{sub}", if *obj == 0 { 'X' } else { 'Y' })
                }
            })
            .collect();
        println!("  half-interval {h:>2}: {}", label.join(", "));
    }
    let counts = sched.verify_continuity().expect("delivery is continuous");
    println!(
        "\ncontinuity verified: X busy {} half-intervals, Y busy {} — no hiccup",
        counts[0], counts[1]
    );

    println!("\ngeneralizing: four 5 mbps clips share one 20 mbps disk (quarter slices):");
    let group = GroupSchedule::new(4, 3);
    let counts = group.verify_continuity().expect("continuous");
    for (obj, c) in counts.iter().enumerate() {
        println!("  clip {obj}: transmits in {c} consecutive quarter-slices");
    }
    println!(
        "  {} slices total; every clip's delivery is gap-free at B_disk/4",
        group.slices.len()
    );
}
