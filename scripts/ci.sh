#!/usr/bin/env bash
# CI gate: formatting, lints, the tier-1 test suite, and a smoke run of
# the engine performance baseline. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf_baseline --quick (regression gate vs BENCH_engine.json)"
# Writes BENCH_engine.quick.json (never the committed full baseline) and
# fails if the quick grid regressed more than 2x against the committed
# artifact's grid_quick section. CI_PERF_STRICT=0 downgrades the failure
# to a warning for noisy shared runners.
cargo run --release -p ss-bench --bin perf_baseline -- --quick --check-against BENCH_engine.json

echo "ci.sh: all checks passed"
