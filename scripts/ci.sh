#!/usr/bin/env bash
# CI gate: formatting, lints, the tier-1 test suite, and a smoke run of
# the engine performance baseline. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> fault suites (per-suite test counts)"
# The degraded-mode harness: property sweep + goldens (now spanning the
# parity/rebuild axes), coalescing proptest, backoff retry-queue
# properties, seed-stability digests, dense-vs-sparse under fault plans.
for suite in fault_properties coalesce_properties backoff_properties seed_stability tick_equivalence; do
  count=$(cargo test -q --test "$suite" 2>&1 | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p')
  if [ -z "$count" ] || [ "$count" -eq 0 ]; then
    echo "ci.sh: suite $suite reported no passing tests" >&2
    exit 1
  fi
  echo "    $suite: $count tests"
done

echo "==> fault_grid --quick (degraded-mode smoke grid)"
cargo run --release -p ss-bench --bin fault_grid -- --quick --out target/ci-fault-grid

echo "==> fault_grid --quick --parity --rebuild (self-healing smoke)"
# Parity reconstruction + hot-spare rebuild must hold every striping
# 1-failure cell at >=80% of its own zero-failure throughput with no
# dropped streams. CI_PERF_STRICT=0 downgrades a miss to a warning for
# noisy shared runners (same escape hatch as the perf gate below).
cargo run --release -p ss-bench --bin fault_grid -- --quick --parity --rebuild --out target/ci-heal-grid
heal_check=$(awk -F, 'NR > 1 && $1 == "striping" && $4 == 1 {
    if ($8 + 0 < 80 || $10 + 0 != 0) {
      print "FAIL stations=" $2 " retention=" $8 "% dropped=" $10; bad = 1
    }
    cells += 1
  }
  END {
    if (cells == 0) { print "FAIL no striping 1-failure cells in the CSV"; bad = 1 }
    if (!bad) print "ok (" cells " cells held the 80% retention floor)"
  }' target/ci-heal-grid/fault_grid.csv)
echo "    $heal_check"
case "$heal_check" in
  FAIL*)
    if [ "${CI_PERF_STRICT:-1}" = "0" ]; then
      echo "ci.sh: WARNING self-healing retention floor missed (CI_PERF_STRICT=0)" >&2
    else
      echo "ci.sh: self-healing retention floor missed" >&2
      exit 1
    fi
    ;;
esac

echo "==> perf_baseline --quick (regression gate vs BENCH_engine.json)"
# Writes BENCH_engine.quick.json (never the committed full baseline) and
# fails if the quick grid regressed more than 2x against the committed
# artifact's grid_quick section. CI_PERF_STRICT=0 downgrades the failure
# to a warning for noisy shared runners.
cargo run --release -p ss-bench --bin perf_baseline -- --quick --check-against BENCH_engine.json

echo "ci.sh: all checks passed"
