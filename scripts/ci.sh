#!/usr/bin/env bash
# CI gate: formatting, lints, the tier-1 test suite, and a smoke run of
# the engine performance baseline. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> fault suites (per-suite test counts)"
# The degraded-mode harness: property sweep + goldens (now spanning the
# parity/rebuild axes), coalescing proptest, backoff retry-queue
# properties, seed-stability digests, dense-vs-sparse under fault plans,
# serial-vs-sharded byte identity, delivery-machine properties (incl.
# the recorded proptest regression, re-run both via its sidecar and as a
# directed case), the distributed-tier equivalence sweep, and the
# crash-consistent storage plane (recovery reconciliation + scrub
# completeness properties), and the SLO/QoS plane (ledger
# reconciliation, alert determinism, root-cause attribution).
for suite in fault_properties coalesce_properties backoff_properties seed_stability tick_equivalence parallel_equivalence obs_properties sharing_equivalence delivery_properties distributed_equivalence crash_properties slo_properties; do
  count=$(cargo test -q --test "$suite" 2>&1 | sed -n 's/^test result: ok\. \([0-9]*\) passed.*/\1/p')
  if [ -z "$count" ] || [ "$count" -eq 0 ]; then
    echo "ci.sh: suite $suite reported no passing tests" >&2
    exit 1
  fi
  echo "    $suite: $count tests"
done

echo "==> fault_grid --quick (degraded-mode smoke grid)"
cargo run --release -p ss-bench --bin fault_grid -- --quick --out target/ci-fault-grid

echo "==> fault_grid --quick --parity --rebuild (self-healing smoke)"
# Parity reconstruction + hot-spare rebuild must hold every striping
# 1-failure cell at >=80% of its own zero-failure throughput with no
# dropped streams. CI_PERF_STRICT=0 downgrades a miss to a warning for
# noisy shared runners (same escape hatch as the perf gate below).
cargo run --release -p ss-bench --bin fault_grid -- --quick --parity --rebuild --out target/ci-heal-grid
heal_check=$(awk -F, 'NR > 1 && $1 == "striping" && $4 == 1 {
    if ($8 + 0 < 80 || $10 + 0 != 0) {
      print "FAIL stations=" $2 " retention=" $8 "% dropped=" $10; bad = 1
    }
    cells += 1
  }
  END {
    if (cells == 0) { print "FAIL no striping 1-failure cells in the CSV"; bad = 1 }
    if (!bad) print "ok (" cells " cells held the 80% retention floor)"
  }' target/ci-heal-grid/fault_grid.csv)
echo "    $heal_check"
case "$heal_check" in
  FAIL*)
    if [ "${CI_PERF_STRICT:-1}" = "0" ]; then
      echo "ci.sh: WARNING self-healing retention floor missed (CI_PERF_STRICT=0)" >&2
    else
      echo "ci.sh: self-healing retention floor missed" >&2
      exit 1
    fi
    ;;
esac

echo "==> trace_dump --quick (observability export + reconciliation gate)"
# trace_dump self-checks before writing: the expanded read timeline must
# match the booked admissions, journal counts must reconcile with the run
# report, the heatmap must hold one row per interval boundary, and the
# Perfetto JSON must parse. Any mismatch exits non-zero.
cargo run --release -p ss-bench --bin trace_dump -- --quick --out target/ci-trace --format perfetto
cargo run --release -p ss-bench --bin trace_dump -- --quick --out target/ci-trace --format jsonl
cargo run --release -p ss-bench --bin trace_dump -- --quick --out target/ci-trace --format csv
# The registry's two interval-indexed artifacts must agree row for row.
heat_rows=$(wc -l < target/ci-trace/heatmap.csv)
series_rows=$(wc -l < target/ci-trace/series.csv)
if [ "$heat_rows" -ne "$series_rows" ] || [ "$heat_rows" -le 1 ]; then
  echo "ci.sh: heatmap.csv ($heat_rows rows) and series.csv ($series_rows rows) disagree" >&2
  exit 1
fi
echo "    heatmap/series: $((heat_rows - 1)) interval rows each"
# Same seed, same journal bytes: rerun and compare.
cargo run --release -p ss-bench --bin trace_dump -- --quick --out target/ci-trace-rerun --format jsonl
if ! cmp -s target/ci-trace/trace.jsonl target/ci-trace-rerun/trace.jsonl; then
  echo "ci.sh: same-seed journals differ between reruns" >&2
  exit 1
fi
echo "    journal: $(wc -l < target/ci-trace/trace.jsonl) events, byte-identical across reruns"

echo "==> ops_report --quick (SLO/QoS reconciliation + alert-determinism gates)"
# ops_report replays a faulted multi-node crash+scrub demo config on
# each scheme, folds the journal into the per-display QoS ledger, and
# self-checks before writing: ledger totals must equal the run report's
# aggregates and every alert must describe a valid journal window. Any
# mismatch exits non-zero (a hard gate — no CI_PERF_STRICT escape).
cargo run --release -p ss-bench --bin ops_report -- --quick --out target/ci-ops
cargo run --release -p ss-bench --bin ops_report -- --quick --vdr --out target/ci-ops-vdr
# Alert determinism: the same seed must render byte-identical dashboard
# artifacts, alerts and incident attribution included.
cargo run --release -p ss-bench --bin ops_report -- --quick --out target/ci-ops-rerun
for f in ops_report.txt ops_slo.csv ops_health.csv ops_incidents.csv ops_report.json ops_trace.jsonl; do
  if ! cmp -s "target/ci-ops/$f" "target/ci-ops-rerun/$f"; then
    echo "ci.sh: same-seed ops_report artifacts differ ($f)" >&2
    exit 1
  fi
done
echo "    $(wc -l < target/ci-ops/ops_trace.jsonl) journal events; 6 artifacts byte-identical across reruns"

echo "==> sharing_capacity --quick (stream-sharing capacity floor)"
# At high popularity skew, multicast batching + the prefix cache must
# sustain at least 2x the baseline's concurrent hiccup-free displays
# (the quick cell typically lands around 7x). CI_PERF_STRICT=0
# downgrades a miss to a warning, as for the other perf gates.
cargo run --release -p ss-bench --bin sharing_capacity -- --quick --out target/ci-sharing
share_check=$(python3 - <<'EOF'
import json
r = json.load(open("target/ci-sharing/sharing_capacity.json"))
ratio = r["high_skew_ratio"]
print(f"FAIL high-skew capacity ratio {ratio:.2f}x (floor 2x)" if ratio < 2.0
      else f"ok (high-skew capacity ratio {ratio:.2f}x >= 2x floor)")
EOF
)
echo "    $share_check"
case "$share_check" in
  FAIL*)
    if [ "${CI_PERF_STRICT:-1}" = "0" ]; then
      echo "ci.sh: WARNING sharing capacity floor missed (CI_PERF_STRICT=0)" >&2
    else
      echo "ci.sh: sharing capacity floor missed" >&2
      exit 1
    fi
    ;;
esac

echo "==> node_grid --quick (distributed node-scaling smoke)"
# The same 24-disk farm split 1/2/4/8 ways, each cell run healthy and
# with one node dark for half the window. The widest split must retain
# at least 70% of its own healthy throughput through a single-node
# outage (the quick cell typically lands above 95%). CI_PERF_STRICT=0
# downgrades a miss to a warning, as for the other perf gates.
cargo run --release -p ss-bench --bin node_grid -- --quick --out target/ci-node-grid
node_check=$(python3 - <<'EOF'
import json
r = json.load(open("target/ci-node-grid/node_grid.json"))
cell = max(r["cells"], key=lambda c: c["nodes"])
n, ret = cell["nodes"], cell["retention_pct"]
print(f"FAIL N={n} single-node-outage retention {ret:.1f}% (floor 70%)" if ret < 70.0
      else f"ok (N={n} retains {ret:.1f}% through a single-node outage, floor 70%)")
EOF
)
echo "    $node_check"
case "$node_check" in
  FAIL*)
    if [ "${CI_PERF_STRICT:-1}" = "0" ]; then
      echo "ci.sh: WARNING node-outage retention floor missed (CI_PERF_STRICT=0)" >&2
    else
      echo "ci.sh: node-outage retention floor missed" >&2
      exit 1
    fi
    ;;
esac

echo "==> crash_grid --quick (journal-recovery + scrub-interference gates)"
# Power-loss/torn-write injection × scrub arming on both schemes. Two
# headline gates: pooled journal recoveries must verify clean at >=99%,
# and arming the scrub daemon on a crash-free run must cost at most 10%
# of the unarmed cell's throughput (the quick grid typically lands at
# 100% recovery and under 3% interference). CI_PERF_STRICT=0 downgrades
# the interference miss to a warning; the recovery floor is a
# correctness gate and always fails hard.
cargo run --release -p ss-bench --bin crash_grid -- --quick --out target/ci-crash-grid
crash_check=$(python3 - <<'EOF'
import json
r = json.load(open("target/ci-crash-grid/crash_grid.json"))
rec, interf = r["recovery_success_pct"], r["scrub_interference_pct"]
if rec < 99.0:
    print(f"HARDFAIL recovery success {rec:.2f}% (floor 99%)")
elif interf > 10.0:
    print(f"FAIL scrub interference {interf:.2f}% (ceiling 10%)")
else:
    print(f"ok (recovery {rec:.2f}% >= 99%, scrub interference {interf:.2f}% <= 10%)")
EOF
)
echo "    $crash_check"
case "$crash_check" in
  HARDFAIL*)
    echo "ci.sh: journal recovery success floor missed" >&2
    exit 1
    ;;
  FAIL*)
    if [ "${CI_PERF_STRICT:-1}" = "0" ]; then
      echo "ci.sh: WARNING scrub interference ceiling missed (CI_PERF_STRICT=0)" >&2
    else
      echo "ci.sh: scrub interference ceiling missed" >&2
      exit 1
    fi
    ;;
esac

echo "==> perf_baseline --quick (regression + parallel-speedup gates)"
# Writes BENCH_engine.quick.json (never the committed full baseline) and
# fails if the quick grid regressed more than 2x against the committed
# artifact's grid_quick section. --gate-parallel additionally requires
# grid_parallel to beat grid by 1.5x when the runner has >= 4 cores
# (skipped below that — a 1-core container cannot scale). In both gates
# CI_PERF_STRICT=0 downgrades the failure to a warning for noisy shared
# runners.
cargo run --release -p ss-bench --bin perf_baseline -- --quick \
  --check-against BENCH_engine.json --gate-parallel

# CI_FULL=1 additionally refreshes the committed full baseline and
# appends a dated row to the BENCH_history.jsonl trajectory (grid and
# quick-grid wall-clocks plus each merged section's headline). Quick
# runs never append — the trajectory tracks full baselines only.
if [ "${CI_FULL:-0}" = "1" ]; then
  echo "==> perf_baseline (full: refresh baseline + append BENCH_history.jsonl row)"
  cargo run --release -p ss-bench --bin perf_baseline -- \
    --check-against BENCH_engine.json --gate-parallel --append-history
fi

echo "==> farm_scale --quick (100k-disk smoke + at-scale equivalence)"
# Runs the 100,000-disk scenario serial and sharded and asserts the two
# reports are byte-identical (the bench exits non-zero on divergence).
cargo run --release -p ss-bench --bin farm_scale -- --quick --out target/ci-farm-scale

echo "ci.sh: all checks passed"
