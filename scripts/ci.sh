#!/usr/bin/env bash
# CI gate: formatting, lints, the tier-1 test suite, and a smoke run of
# the engine performance baseline. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> perf_baseline --quick"
cargo run --release -p ss-bench --bin perf_baseline -- --quick

echo "ci.sh: all checks passed"
