//! Vendored minimal stand-in for the `rand` crate (offline build).
//!
//! The workspace's only use of `rand` is implementing [`RngCore`] for its
//! own deterministic generator (`ss_sim::rng::DeterministicRng`), so that
//! is all this stub provides — same method set as rand 0.9.

#![forbid(unsafe_code)]

/// The core random-number-generator interface (rand 0.9 shape).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dst: &mut [u8]) {
        (**self).fill_bytes(dst)
    }
}
