//! Vendored minimal property-testing harness, API-compatible with the
//! subset of `proptest` this workspace uses (offline build — the real
//! crate cannot be downloaded in this container).
//!
//! Supported surface: the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//! `pattern in strategy` arguments; integer-range strategies; tuple
//! strategies; `prop_map` / `prop_flat_map` / `prop_filter_map` /
//! `prop_filter`; `prop::collection::vec`; `proptest::bool::ANY`; `Just`;
//! and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic, overridable with `PROPTEST_SEED`),
//! and failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

// ---- deterministic generator (splitmix64) --------------------------------

/// The RNG handed to strategies. SplitMix64 — small, fast, and good enough
/// for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling on the top bits to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }
}

// ---- strategies ----------------------------------------------------------

/// A generator of values of type `Value`. Returns `None` when this draw is
/// rejected (e.g. by `prop_filter_map`) and should be retried.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter_map<O: Debug, F: Fn(Self::Value) -> Option<O>>(
        self,
        _whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { base: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { base: self, f }
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.base.generate(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S2::Value> {
        let inner = (self.f)(self.base.generate(rng)?);
        inner.generate(rng)
    }
}

pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        (self.f)(self.base.generate(rng)?)
    }
}

pub struct Filter<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$n.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// `proptest::bool::ANY`.
pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// `prop::collection` — sized collections of strategy-generated elements.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::fmt::Debug;
    use core::ops::{Range, RangeInclusive};

    /// Element-count range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Alias so `prop::collection::vec(..)` resolves under the prelude.
pub mod prop {
    pub use super::bool;
    pub use super::collection;
}

// ---- runner --------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

pub type TestCaseResult = core::result::Result<(), TestCaseError>;

fn seed_for(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.parse() {
            return n;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one `proptest!` test: draws inputs from `strategy` and runs
/// `body` until `config.cases` cases pass, a case fails, or the rejection
/// budget is exhausted.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: S,
    body: impl Fn(S::Value) -> TestCaseResult,
) {
    let mut rng = TestRng::new(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u64;
    const MAX_REJECTS: u64 = 1 << 20;
    while passed < config.cases {
        let Some(input) = strategy.generate(&mut rng) else {
            rejected += 1;
            assert!(
                rejected < MAX_REJECTS,
                "proptest `{name}`: strategy rejected {rejected} draws — \
                 too restrictive a filter?"
            );
            continue;
        };
        let desc = format!("{input:?}");
        match body(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < MAX_REJECTS,
                    "proptest `{name}`: {rejected} rejected cases — \
                     too restrictive a prop_assume!?"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s)\n\
                     input: {desc}\n{msg}\n\
                     (vendored harness: inputs are not shrunk; \
                     seed derives from the test name, override with PROPTEST_SEED)"
                );
            }
        }
    }
}

// ---- macros --------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::run_cases(
                &config,
                stringify!($name),
                strategy,
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ),
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}`\n  both: {:?}\n{}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            ),
        }
    };
}

/// The prelude: everything a `use proptest::prelude::*;` test expects.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}
