//! Vendored minimal stand-in for the `serde` crate.
//!
//! This container builds with no network access, so the real serde cannot
//! be downloaded. The workspace only needs the subset that `serde_json`
//! round-trips exercise: `#[derive(Serialize, Deserialize)]` on plain
//! structs, tuple structs and enums (unit + struct + tuple variants) with
//! no `#[serde(...)]` attributes. Instead of serde's visitor machinery we
//! use a tiny self-describing tree ([`Value`]) that `serde_json` renders
//! with the same JSON conventions as the real crate:
//!
//! * named struct → JSON object, fields in declaration order;
//! * newtype struct → the inner value, transparently;
//! * tuple struct / tuple → JSON array;
//! * unit enum variant → `"Name"`;
//! * struct/tuple enum variant → `{"Name": ...}`;
//! * `Option` → `null` / value; missing object field → `None`.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialization tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Key/value pairs in insertion order (JSON object).
    Map(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A value that can render itself into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A value that can rebuild itself from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// `Value` round-trips as itself, like the real serde_json's `Value` —
// parsing into it is how callers validate arbitrary JSON.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- helpers used by derive-generated code -------------------------------

impl Value {
    pub fn as_map(&self, what: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Map(m) => Ok(m),
            other => Err(Error(format!("expected object for {what}, got {other:?}"))),
        }
    }

    pub fn as_seq(&self, what: &str) -> Result<&[Value], Error> {
        match self {
            Value::Seq(s) => Ok(s),
            other => Err(Error(format!("expected array for {what}, got {other:?}"))),
        }
    }
}

/// Looks up a field, if present.
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Looks up a required field.
pub fn req_field<'a>(map: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, Error> {
    field(map, name).ok_or_else(|| Error(format!("missing field `{name}` in {ty}")))
}

/// Fetches element `i` of a tuple/tuple-struct encoding.
pub fn seq_elem<'a>(seq: &'a [Value], i: usize, ty: &str) -> Result<&'a Value, Error> {
    seq.get(i)
        .ok_or_else(|| Error(format!("{ty}: tuple too short, no element {i}")))
}

// ---- primitive impls -----------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(Error(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error(format!("{n} out of range")))?,
                    other => return Err(Error(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Real serde_json writes non-finite floats as null; accept the
            // round trip back rather than failing.
            Value::Null => Ok(f64::NAN),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq("Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other:?}"))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq("tuple")?;
                Ok(($($t::from_value(seq_elem(s, $n, "tuple")?)?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
