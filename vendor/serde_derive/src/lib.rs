//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the stand-in
//! serde crate (see `vendor/serde`). Parses the item by hand (no syn/quote
//! — the container has no network to fetch them) and supports exactly what
//! this workspace uses: non-generic named structs, tuple structs and enums
//! with unit/struct/tuple variants, and two field attributes:
//! `#[serde(default)]` (missing field => `Default::default()`, like real
//! serde — the additive-schema escape hatch) and
//! `#[serde(skip_serializing_if = "..")]` (the field is omitted from the
//! serialized map whenever its value serializes to `Null` — the predicate
//! string is accepted for source compatibility with real serde but only the
//! `Option::is_none` behavior is implemented).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- a tiny item model ---------------------------------------------------

struct Field {
    name: String,
    /// Token-text of the type, used only to spot `Option<..>` fields.
    ty: String,
    /// `#[serde(default)]`: a missing field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(skip_serializing_if = "..")]`: the field is left out of the
    /// serialized map when its value serializes to `Null`.
    skip_if_null: bool,
}

enum VariantKind {
    Unit,
    /// Struct variant with named fields.
    Named(Vec<Field>),
    /// Tuple variant with `n` unnamed fields.
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    NamedStruct(Vec<Field>),
    /// Tuple struct with `n` fields (n = 1 is a newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types ({name})");
    }
    let body = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("expected struct or enum, got `{other}`"),
    };
    Item { name, body }
}

/// Advances past `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`], but also reports which of the skipped
/// attributes' serde words were present: `(default, skip_serializing_if)`.
fn skip_field_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut default = false;
    let mut skip_if_null = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    default |= serde_attr_has_word(g.stream(), "default");
                    skip_if_null |= serde_attr_has_word(g.stream(), "skip_serializing_if");
                }
                *i += 2; // `#` + the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return (default, skip_if_null),
        }
    }
}

/// True for the attribute body `serde(.. word ..)` — any comma-separated
/// entry whose leading ident is `word` counts (so `skip_serializing_if =
/// "Option::is_none"` matches the word `skip_serializing_if`).
fn serde_attr_has_word(stream: TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

/// Parses `name: Type, ...` (with attributes/visibility per field).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let (default, skip_if_null) = skip_field_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, got {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other}"),
        }
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&tokens[i].to_string());
            i += 1;
        }
        fields.push(Field {
            name,
            ty,
            default,
            skip_if_null,
        });
    }
    fields
}

/// Counts the fields of a tuple struct/variant body `(TypeA, TypeB, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a possible `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn is_option(ty: &str) -> bool {
    ty.starts_with("Option ")
        || ty == "Option"
        || ty.starts_with("core :: option :: Option")
        || ty.starts_with("std :: option :: Option")
}

// ---- code generation -----------------------------------------------------

fn named_fields_to_value(fields: &[Field], prefix: &str) -> String {
    if fields.iter().all(|f| !f.skip_if_null) {
        let entries: Vec<String> = fields
            .iter()
            .map(|f| {
                format!(
                    "(\"{n}\".to_string(), ::serde::Serialize::to_value(&{prefix}{n}))",
                    n = f.name
                )
            })
            .collect();
        return format!("::serde::Value::Map(vec![{}])", entries.join(", "));
    }
    // At least one field is conditionally emitted: build the map
    // imperatively so skip-if-null fields can be left out entirely.
    let pushes: Vec<String> = fields
        .iter()
        .map(|f| {
            let n = &f.name;
            if f.skip_if_null {
                format!(
                    "match ::serde::Serialize::to_value(&{prefix}{n}) {{ \
                         ::serde::Value::Null => {{}}, \
                         v => entries.push((\"{n}\".to_string(), v)) }}"
                )
            } else {
                format!(
                    "entries.push((\"{n}\".to_string(), \
                         ::serde::Serialize::to_value(&{prefix}{n})));"
                )
            }
        })
        .collect();
    format!(
        "{{ let mut entries: Vec<(String, ::serde::Value)> = Vec::new(); {} \
             ::serde::Value::Map(entries) }}",
        pushes.join(" ")
    )
}

fn named_fields_from_map(fields: &[Field], ty: &str, map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.default {
                // `#[serde(default)]`: missing field => Default::default().
                format!(
                    "{n}: match ::serde::field({m}, \"{n}\") {{ \
                         Some(v) => ::serde::Deserialize::from_value(v)?, \
                         None => ::core::default::Default::default() }}",
                    n = f.name,
                    m = map_expr
                )
            } else if is_option(&f.ty) {
                // Missing object field => None (matches real serde).
                format!(
                    "{n}: match ::serde::field({m}, \"{n}\") {{ \
                         Some(v) => ::serde::Deserialize::from_value(v)?, \
                         None => None }}",
                    n = f.name,
                    m = map_expr
                )
            } else {
                format!(
                    "{n}: ::serde::Deserialize::from_value(\
                         ::serde::req_field({m}, \"{n}\", \"{ty}\")?)?",
                    n = f.name,
                    m = map_expr
                )
            }
        })
        .collect();
    inits.join(", ")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => named_fields_to_value(fields, "self."),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())")
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                            let inner = named_fields_to_value(fields, "");
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                                     (\"{vn}\".to_string(), {inner})])",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![\
                                 (\"{vn}\".to_string(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![\
                                     (\"{vn}\".to_string(), ::serde::Value::Seq(\
                                     vec![{elems}]))])",
                                binds = binds.join(", "),
                                elems = elems.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => format!(
            "let m = v.as_map(\"{name}\")?; Ok({name} {{ {} }})",
            named_fields_from_map(fields, name, "m")
        ),
        Body::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                             ::serde::seq_elem(s, {i}, \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let s = v.as_seq(\"{name}\")?; Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::UnitStruct => format!("let _ = v; Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => Some(format!(
                            "\"{vn}\" => {{ \
                                 let m = inner.as_map(\"{name}::{vn}\")?; \
                                 Ok({name}::{vn} {{ {} }}) }}",
                            named_fields_from_map(fields, &format!("{name}::{vn}"), "m")
                        )),
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(inner)?))"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(\
                                         ::serde::seq_elem(s, {i}, \"{name}::{vn}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                     let s = inner.as_seq(\"{name}::{vn}\")?; \
                                     Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                     ::serde::Value::Str(s) => match s.as_str() {{ \
                         {unit_arms}, \
                         other => Err(::serde::Error(format!(\
                             \"unknown variant `{{other}}` for {name}\"))) }}, \
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{ \
                         let (tag, inner) = (&entries[0].0, &entries[0].1); \
                         match tag.as_str() {{ \
                             {map_arms}, \
                             other => Err(::serde::Error(format!(\
                                 \"unknown variant `{{other}}` for {name}\"))) }} }}, \
                     other => Err(::serde::Error(format!(\
                         \"expected variant of {name}, got {{other:?}}\"))) }}",
                unit_arms = if unit_arms.is_empty() {
                    "_ if false => unreachable!()".to_string()
                } else {
                    unit_arms.join(", ")
                },
                map_arms = if map_arms.is_empty() {
                    "_ if false => unreachable!()".to_string()
                } else {
                    map_arms.join(", ")
                },
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
