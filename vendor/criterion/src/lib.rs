//! Vendored minimal benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses (offline build). Reports wall-clock
//! time per iteration (median over samples) to stdout; it does not do
//! criterion's statistical analysis, plots, or baseline comparisons.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Optional substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; any bare argument is a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            filter,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        b.report(id);
    }
}

/// A named group of benchmarks (mirrors `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        let sample_size = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&id, sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup cost. Only the names matter here:
/// this harness always runs one setup per timed routine call.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly. The iteration count per sample adapts so
    /// that cheap routines are timed in batches (amortizing clock overhead)
    /// while expensive ones run once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~1 ms?
        let start = Instant::now();
        let _keep = routine();
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;
        let samples = self.budgeted_samples(once * per_sample as u32);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibrate with one untimed-setup run.
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let samples = self.budgeted_samples(once);
        for _ in 0..samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Caps the sample count so one benchmark stays within ~2 s.
    fn budgeted_samples(&self, per_sample: Duration) -> usize {
        let budget = Duration::from_secs(2);
        let fit = (budget.as_nanos() / per_sample.as_nanos().max(1)) as usize;
        fit.clamp(3, self.sample_size.max(3))
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{id:<50} median {:>12} min {:>12} ({} samples)",
            fmt_duration(median),
            fmt_duration(min),
            sorted.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
