//! Vendored minimal JSON codec over the stand-in `serde` crate.
//!
//! Implements the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — with the same JSON shapes as the
//! real serde_json (see `vendor/serde`). Numbers render via Rust's
//! shortest-roundtrip float formatting; non-finite floats serialize as
//! `null` exactly like the real crate.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

pub use serde::Error;
pub use serde::Value;

pub type Result<T> = core::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest-roundtrip rendering; like the
                // real serde_json it always keeps a fractional part or
                // exponent, so floats survive the round trip as floats.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, '[', ']', items.len(), indent, level, |out, i| {
            write_value(out, &items[i], indent, level + 1);
        }),
        Value::Map(entries) => {
            write_block(out, '{', '}', entries.len(), indent, level, |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, level + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    level: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_map(),
            Some(b'[') => self.parse_seq(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = core::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let chunk = core::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}
