//! # staggered-striping
//!
//! A full reproduction of *"Staggered Striping in Multimedia Information
//! Systems"* (Berson, Ghandeharizadeh, Muntz, Ju — SIGMOD 1994) as a Rust
//! workspace: the staggered-striping placement and scheduling scheme, every
//! substrate it depends on (discrete-event simulation kernel, disk and
//! tertiary device models, workload generators), the virtual-data-
//! replication baseline it is compared against, and the simulation harness
//! that regenerates every table and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates and offers
//! a [`prelude`] for applications.
//!
//! ## Quick start
//!
//! ```
//! use staggered_striping::prelude::*;
//!
//! // A 12-disk farm, stride 1, 1.512 MB fragments, 20 mbps disks.
//! let frame = VirtualFrame::new(12, 1);
//! let mut scheduler = IntervalScheduler::new(frame);
//!
//! // Place a 60 mbps object (M = 3) of 24 subobjects starting on disk 4.
//! let layout = StripingLayout::new(ObjectId(0), 4, 3, 24, 12, 1);
//! assert_eq!(layout.fragment_disk(0, 0), DiskId(4));
//!
//! // Admit a display of it at interval 0.
//! let grant = scheduler
//!     .try_admit(0, ObjectId(0), 4, 3, 24, AdmissionPolicy::Contiguous)
//!     .unwrap();
//! assert_eq!(grant.delivery_start, 0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`types`] | units (time, bytes, bandwidth), ids, errors |
//! | [`sim`] | deterministic DES kernel, RNG, distributions, statistics |
//! | [`disk`] | disk geometry/timing model, effective bandwidth (§3.1) |
//! | [`tertiary`] | tertiary device and materialization model (§3.2.4) |
//! | [`workload`] | display stations and popularity models (§4.1) |
//! | [`core`] | placement, virtual frame, admission, Algorithms 1–2, low-bandwidth pairing, VCR (§3) |
//! | [`vdr`] | virtual-data-replication baseline (§2, \[GS93\]) |
//! | [`server`] | end-to-end simulated server + experiment harness (§4) |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ss_core as core;
pub use ss_disk as disk;
pub use ss_obs as obs;
pub use ss_server as server;
pub use ss_sim as sim;
pub use ss_tertiary as tertiary;
pub use ss_types as types;
pub use ss_vdr as vdr;
pub use ss_workload as workload;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use ss_core::admission::{AdmissionGrant, AdmissionPolicy, IntervalScheduler};
    pub use ss_core::frame::VirtualFrame;
    pub use ss_core::media::{MediaType, ObjectCatalog, ObjectSpec};
    pub use ss_core::placement::{PlacementBackend, PlacementMap, StripingConfig, StripingLayout};
    pub use ss_disk::{AvailabilityMask, DiskParams};
    pub use ss_server::{
        config::{
            DistributedConfig, MaterializeMode, NodeOutage, ParityConfig, RebuildConfig, Scheme,
            ScrubConfig, ServerConfig, SharingConfig,
        },
        metrics::{
            CrashStats, DegradedStats, DistributedStats, RunReport, SelfHealStats, SharingStats,
        },
        StripingServer, VdrServer,
    };
    pub use ss_sim::{
        CrashFaults, CrashKind, CrashPlanEvent, DeterministicRng, FaultEvent, FaultKind, FaultPlan,
        Simulation, StochasticFaults,
    };
    pub use ss_tertiary::{TapeLayout, TertiaryDevice, TertiaryParams};
    pub use ss_types::{
        Bandwidth, Bytes, ClusterId, DiskId, Error, NodeId, NodeTopology, ObjectId, RequestId,
        Result, SimDuration, SimTime, StationId,
    };
    pub use ss_vdr::{ClusterFarm, VdrConfig};
    pub use ss_workload::{Popularity, StationPool};
}
