//! Validates the closed-form models of `ss_server::analysis` against the
//! simulators: predictions must bound (and at low load closely track)
//! the measured throughput.

use staggered_striping::prelude::*;
use staggered_striping::server::analysis::{striping_model, vdr_upper_bound};
use staggered_striping::server::vdr::vdr_config_for;

fn small(stations: u32) -> ServerConfig {
    let mut c = ServerConfig::small_test(stations, 17);
    c.subobjects = 200;
    c.measure = SimDuration::from_secs(2 * 3600);
    c
}

/// Below saturation the striping simulator lands within a few percent of
/// the analytic prediction (station-bound regime).
#[test]
fn striping_matches_model_below_saturation() {
    for stations in [1u32, 2, 3] {
        let cfg = small(stations);
        let model = striping_model(&cfg, stations);
        let r = ss_server::run(&cfg).unwrap();
        let rel = (r.displays_per_hour - model.predicted).abs() / model.predicted;
        assert!(
            rel < 0.05,
            "{stations} stations: sim {} vs model {}",
            r.displays_per_hour,
            model.predicted
        );
    }
}

/// At and above saturation the model is an upper bound the simulator
/// approaches but never exceeds.
#[test]
fn striping_never_beats_the_model() {
    for stations in [4u32, 8, 32] {
        let cfg = small(stations);
        let model = striping_model(&cfg, stations);
        let r = ss_server::run(&cfg).unwrap();
        assert!(
            r.displays_per_hour <= model.predicted * 1.02,
            "{stations} stations: sim {} vs model {}",
            r.displays_per_hour,
            model.predicted
        );
        // Saturated: the simulator should reach most of the bound.
        if stations >= 8 {
            assert!(
                r.displays_per_hour >= model.predicted * 0.85,
                "{stations} stations: sim {} too far below model {}",
                r.displays_per_hour,
                model.predicted
            );
        }
    }
}

/// The VDR simulator stays at or below the replication-oracle bound (the
/// bound assumes free, instant, perfectly-targeted replication).
#[test]
fn vdr_never_beats_the_oracle_bound() {
    for stations in [2u32, 8, 16] {
        let mut cfg = small(stations);
        cfg.scheme = Scheme::Vdr {
            vdr: vdr_config_for(&cfg),
        };
        cfg.materialize = MaterializeMode::AfterFull;
        let bound = vdr_upper_bound(&cfg, stations);
        let r = ss_server::run(&cfg).unwrap();
        assert!(
            r.displays_per_hour <= bound * 1.02,
            "{stations} stations: sim {} vs oracle bound {bound}",
            r.displays_per_hour
        );
    }
}

/// The paper-scale models reproduce the Figure 8 regimes: striping is
/// disk-bound at 256 stations under skew, tertiary-aware under uniform.
#[test]
fn paper_scale_regimes() {
    let skewed = striping_model(&ServerConfig::paper_striping(256, 10.0, 1), 256);
    assert!(skewed.predicted <= skewed.disk_bound);
    assert!(skewed.miss_probability < 1e-6);

    let uniform = striping_model(&ServerConfig::paper_striping(256, 43.5, 1), 256);
    assert!(uniform.miss_probability > skewed.miss_probability);
    assert!(uniform.tertiary_bound.is_finite());
}
