//! End-to-end determinism goldens: the serialized [`RunReport`]s of a
//! fixed set of small configurations, pinned **byte-for-byte**.
//!
//! These runs cover the engine's hot paths — preloaded and cold starts,
//! eviction under an overcommitted farm, contiguous and time-fragmented
//! admission, dynamic coalescing, and the VDR baseline — so any change to
//! placement, admission, or the tick loop that alters behavior (rather
//! than just speed) shows up as a golden diff. Performance work must keep
//! this file green without regenerating it.
//!
//! Regenerate (after an *intentional* behavior change) with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```

use staggered_striping::prelude::*;
use staggered_striping::server::config::{ArrivalModel, MediaMix};
use staggered_striping::server::experiment::{run_batch, small_grid_configs};

const GOLDEN_PATH: &str = "tests/golden/run_reports.json";

/// The pinned configuration set. Every config is small enough to run in
/// well under a second but still exercises a distinct engine path.
fn golden_configs() -> Vec<ServerConfig> {
    let mut out = Vec::new();

    // 1–2. The overcommitted small-farm grid cell (striping + VDR):
    // 750 objects on a 300-object farm, so LFU eviction and tertiary
    // refetches run.
    out.extend(small_grid_configs(&[8], 20.0, 1994));

    // 3. Mixed-media staggered striping with time-fragmented admission
    // and dynamic coalescing (the §3.2.1 machinery).
    let mut mixed =
        staggered_striping::server::experiment::mixed_media_configs(12, 7).swap_remove(0);
    mixed.disks = 60;
    mixed.mix = Some(MediaMix::section31_example(20, 200));
    mixed.popularity = staggered_striping::workload::Popularity::Uniform;
    mixed.warmup = SimDuration::from_secs(1200);
    mixed.measure = SimDuration::from_secs(3600);
    out.push(mixed);

    // 4. Cold start: empty farm, every request goes through the tertiary
    // materialization pipeline.
    let mut cold = ServerConfig::small_test(2, 7);
    cold.preload = false;
    out.push(cold);

    // 5. Open-system Poisson arrivals (the non-closed request path).
    let mut open = ServerConfig::small_test(1, 11);
    open.arrivals = ArrivalModel::Open {
        rate_per_hour: 300.0,
    };
    out.push(open);

    for c in &out {
        c.validate().expect("golden config is valid");
    }
    out
}

#[test]
fn run_reports_match_golden_bytes() {
    let reports = run_batch(golden_configs(), 1);
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&reports).expect("serialize reports")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "RunReports drifted from {GOLDEN_PATH}; if the behavior change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn run_batch_thread_count_is_invisible() {
    let seq = run_batch(golden_configs(), 1);
    let par = run_batch(golden_configs(), 4);
    assert_eq!(seq, par, "reports must not depend on --threads");
}
