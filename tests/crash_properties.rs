//! Properties of the crash-consistent storage plane: power-loss /
//! torn-write injection, journaled metadata recovery, and the scrub
//! daemon, swept across both schemes.
//!
//! * **Determinism** — same seed, same crash plan and scrub rate ⇒
//!   byte-identical [`RunReport`]s, recoveries and all; the sharded
//!   engine pins the same bytes as the serial one with the plane armed.
//! * **Zero-armed gate** — a crash plan that can never fire and no
//!   scrub config never constructs a plane: every byte of the report is
//!   identical to a run with no plan at all, and no `crash` section is
//!   serialized. Together with `golden_reports.rs` this proves the
//!   storage plane is byte-invisible until armed.
//! * **Reconciliation invariant** — stepping tick by tick through
//!   arbitrary power-loss/torn-write schedules, after every event the
//!   plane's ledgers verify internally (bitmap ≡ extents ≡ free index)
//!   and the plane's object set equals the model's resident set.
//!   Recovery is all-or-nothing: an interrupted transaction is either
//!   replayed whole or discarded whole, never half-applied.
//! * **Scrub completeness** — a scrub pass at a rate fast enough to
//!   finish within the window detects, counts, and repairs every latent
//!   error a torn-write schedule planted, on both the bandwidth-charged
//!   (striping) and metadata-only (VDR) walks.

use proptest::prelude::*;
use staggered_striping::prelude::*;
use staggered_striping::server::experiment::run_batch;

/// A shortened-window cell on the 20-disk test farm.
fn base(scheme: &str, stations: u32, seed: u64) -> ServerConfig {
    let mut c = match scheme {
        "striping" => ServerConfig::small_test(stations, seed),
        _ => ServerConfig::small_vdr_test(stations, seed),
    };
    c.warmup = SimDuration::from_secs(120);
    c.measure = SimDuration::from_secs(600);
    c
}

/// Arms stochastic power losses and torn writes aggressive enough to
/// fire several times inside the shortened window.
fn with_stochastic_crash(mut c: ServerConfig) -> ServerConfig {
    c.faults.crash = Some(CrashFaults {
        power_loss_mtbf: Some(SimDuration::from_secs(240)),
        torn_write_mtbf: Some(SimDuration::from_secs(180)),
        ..Default::default()
    });
    c
}

fn render(report: &RunReport) -> String {
    serde_json::to_string_pretty(report).expect("serialize report")
}

/// Every (scheme, arming, seed) cell runs twice under the same seed and
/// must serialize to the same bytes — crash compilation, cut-point
/// salts, recovery decisions, scrub chunking and repairs included. The
/// sharded twin of each cell pins the same bytes as its serial run, so
/// `parallel_shards` stays byte-invisible with the plane armed.
#[test]
fn same_seed_crash_runs_are_byte_identical_across_sweep() {
    let mut configs = Vec::new();
    for seed in [1, 7, 1994] {
        for scheme in ["striping", "vdr"] {
            for arming in ["crash", "scrub", "both"] {
                let mut c = base(scheme, 2, seed);
                if arming != "scrub" {
                    c = with_stochastic_crash(c);
                }
                if arming != "crash" {
                    c.scrub = Some(ScrubConfig::rate(4));
                }
                configs.push(c.clone());
                c.parallel_shards = Some(4);
                configs.push(c);
            }
        }
    }
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let first = run_batch(configs.clone(), threads);
    let second = run_batch(configs.clone(), threads);
    let mut crash_sections = 0;
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(
            render(a),
            render(b),
            "case {i} ({}, seed {}) is not seed-deterministic",
            a.scheme,
            a.seed,
        );
        crash_sections += usize::from(a.crash.is_some());
    }
    // Serial/sharded twins are adjacent pairs.
    for pair in first.chunks(2) {
        assert_eq!(
            render(&pair[0]),
            render(&pair[1]),
            "parallel_shards changed the bytes of a crash-armed run \
             ({}, seed {})",
            pair[0].scheme,
            pair[0].seed,
        );
    }
    assert_eq!(
        crash_sections,
        first.len(),
        "every armed cell reports a crash section"
    );
    assert!(
        first
            .iter()
            .any(|r| r.crash.as_ref().is_some_and(|c| c.recoveries > 0)),
        "the sweep exercised journal recovery"
    );
    assert!(
        first
            .iter()
            .any(|r| r.crash.as_ref().is_some_and(|c| c.latent_repaired > 0)),
        "the sweep repaired at least one latent error"
    );
}

/// A crash plan that can never fire, with no scrub config, must be
/// invisible: same bytes as no plan at all, and no `crash` section in
/// the JSON. (`golden_reports.rs` pins the no-plan bytes, so this
/// transitively proves zero-armed configs reproduce the committed
/// goldens.)
#[test]
fn zero_armed_storage_plane_is_byte_invisible() {
    for scheme in ["striping", "vdr"] {
        let plain = base(scheme, 2, 1994);
        let mut gated = plain.clone();
        gated.faults.crash = Some(CrashFaults::default());
        let a = staggered_striping::server::run(&plain).expect("valid config");
        let b = staggered_striping::server::run(&gated).expect("valid config");
        assert_eq!(
            render(&a),
            render(&b),
            "an empty crash plan changed the {scheme} report"
        );
        assert!(
            !render(&b).contains("\"crash\""),
            "zero-armed reports must not carry a crash section"
        );
    }
}

/// A deterministic crash schedule from proptest-chosen raw values:
/// three events at distinct times inside the window, alternating kinds,
/// on proptest-chosen disks.
fn planned_events(disks: u32, picks: &[(u32, u32)]) -> CrashFaults {
    CrashFaults {
        events: picks
            .iter()
            .enumerate()
            .map(|(i, &(disk, at_s))| CrashPlanEvent {
                disk: disk % disks,
                at: SimTime::from_secs(u64::from(150 + (at_s % 400)) + 5 * i as u64),
                kind: if i % 2 == 0 {
                    CrashKind::PowerLoss
                } else {
                    CrashKind::TornWrite
                },
            })
            .collect(),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stepping tick by tick through an arbitrary three-event
    /// power-loss/torn-write schedule: the reconciliation invariant
    /// holds at every instant on both schemes, every power loss that
    /// found an open transaction ran replay-or-discard recovery, and
    /// the journal never half-applies (replayed + discarded transactions
    /// both land in a ledger that still verifies).
    #[test]
    fn reconciliation_holds_at_every_crash_cut_point(
        seed in 1u64..500,
        picks in proptest::collection::vec((0u32..20, 0u32..400), 3),
    ) {
        for scheme in ["striping", "vdr"] {
            let mut cfg = base(scheme, 3, seed);
            cfg.verify_delivery = false;
            cfg.faults.crash = Some(planned_events(cfg.disks, &picks));
            let power_losses =
                picks.len().div_ceil(2) as u64;
            if scheme == "striping" {
                let mut server = StripingServer::new(cfg).expect("valid config");
                while server.step() {
                    prop_assert!(
                        server.model().storage_reconciles(),
                        "striping plane out of sync at {:?} (seed {seed})",
                        server.now(),
                    );
                }
                let stats = server.model().crash_stats().expect("plane armed");
                prop_assert_eq!(stats.power_loss_events, power_losses);
                prop_assert_eq!(stats.torn_write_events, picks.len() as u64 - power_losses);
                prop_assert!(stats.recoveries_clean <= stats.recoveries);
                // A cut at a quiescent point finds no open transaction:
                // recovery still runs (and verifies), replaying or
                // discarding at most one transaction per power loss.
                prop_assert!(stats.txns_replayed + stats.txns_discarded <= stats.recoveries);
            } else {
                let mut server = VdrServer::new(cfg).expect("valid config");
                while server.step() {
                    prop_assert!(
                        server.model().storage_reconciles(),
                        "VDR plane out of sync at {:?} (seed {seed})",
                        server.now(),
                    );
                }
                let stats = server.model().crash_stats().expect("plane armed");
                prop_assert_eq!(stats.power_loss_events, power_losses);
                prop_assert!(stats.recoveries_clean <= stats.recoveries);
            }
        }
    }

    /// Torn writes at arbitrary times and disks, scrubbed at a rate
    /// fast enough that a full pass fits the remaining window: every
    /// latent error the schedule planted is detected, dwell-timed, and
    /// repaired, and none is still planted at the end — on both the
    /// bandwidth-charged striping walk and VDR's metadata-only walk.
    #[test]
    fn scrub_pass_finds_and_repairs_every_planted_latent(
        seed in 1u64..500,
        picks in proptest::collection::vec((0u32..20, 0u32..350), 2..5),
    ) {
        for scheme in ["striping", "vdr"] {
            let mut cfg = base(scheme, 2, seed);
            cfg.verify_delivery = false;
            let mut plan = planned_events(cfg.disks, &picks);
            for ev in &mut plan.events {
                ev.kind = CrashKind::TornWrite;
            }
            cfg.faults.crash = Some(plan);
            cfg.scrub = Some(ScrubConfig::rate(50));
            let report = staggered_striping::server::run(&cfg).expect("valid config");
            let c = report.crash.expect("plane armed");
            prop_assert_eq!(c.torn_write_events, picks.len() as u64);
            prop_assert_eq!(
                c.latent_found, c.latent_injected,
                "scrub pass missed a latent ({scheme}, seed {seed})"
            );
            prop_assert_eq!(c.latent_repaired, c.latent_found);
            prop_assert!(c.latent_injected == 0 || c.latent_dwell_s > 0.0);
            prop_assert!(c.scrub_passes >= 1, "window fits at least one pass");
        }
    }
}
