//! Dense-vs-sparse tick equivalence: event-driven quiescence
//! (`dense_ticks: false`, the default) must produce reports
//! bit-identical to ticking every interval boundary unconditionally.
//!
//! The property sweeps both schemes and all three arrival models over
//! randomized small configurations; the deterministic tests pin down
//! that the sparse scheduler actually skips work on paper-scale
//! Figure-8 cells (a vacuous equivalence would pass the property).

use proptest::prelude::*;
use staggered_striping::prelude::*;
use staggered_striping::server::config::{ArrivalModel, MaterializeMode, QueuePolicy, Scheme};
use staggered_striping::server::vdr::vdr_config_for;
use staggered_striping::server::{StripingServer, VdrServer};

/// A randomized small configuration: both schemes, all arrival models,
/// every queue policy, warm and cold starts, short windows, and every
/// fault-plan shape (none, scheduled windows, a stochastic storm).
fn config_strategy() -> impl Strategy<Value = ServerConfig> {
    (
        1u32..=6,                    // stations
        0u64..1_000,                 // seed
        0u8..3,                      // arrival model selector (striping only)
        prop::bool::ANY,             // VDR?
        prop::bool::ANY,             // preload
        0u8..3,                      // queue policy selector
        (60u64..=240, 300u64..=900), // warmup / measure seconds
        0u8..4,                      // fault plan selector
    )
        .prop_map(
            |(stations, seed, arrival, vdr, preload, queue, (warmup, measure), faults)| {
                let mut c = ServerConfig::small_test(stations, seed);
                c.warmup = SimDuration::from_secs(warmup);
                c.measure = SimDuration::from_secs(measure);
                c.faults = fault_plan(faults, warmup, measure);
                c.preload = preload;
                c.verify_delivery = false;
                c.queue = match queue {
                    0 => QueuePolicy::Fcfs,
                    1 => QueuePolicy::SmallestFirst,
                    _ => QueuePolicy::LargestFirst,
                };
                if vdr {
                    // The VDR baseline runs the closed workload only.
                    c.scheme = Scheme::Vdr {
                        vdr: vdr_config_for(&c),
                    };
                    c.materialize = MaterializeMode::AfterFull;
                } else {
                    match arrival {
                        1 => {
                            c.arrivals = ArrivalModel::Open {
                                rate_per_hour: 60.0 + 45.0 * f64::from(stations),
                            };
                        }
                        2 => {
                            // A sparse trace: one request every two
                            // simulated minutes, cycling the catalog.
                            c.arrivals = ArrivalModel::Trace {
                                events: (0..12)
                                    .map(|i| (i * 120_000_000, (i % 10) as u32))
                                    .collect(),
                            };
                        }
                        _ => {} // closed (the paper's workload)
                    }
                }
                c
            },
        )
}

/// The fault-plan axis of the sweep. Sparse ticking must stay
/// bit-identical with faults live: timeline events are wakeup sources,
/// and rescue/hiccup decisions depend only on tick-boundary state.
fn fault_plan(selector: u8, warmup: u64, measure: u64) -> FaultPlan {
    let at = |s: u64| SimTime::from_secs(s);
    match selector {
        // One hard failure window in the middle of the measurement.
        1 => FaultPlan::fail_window(3, at(warmup + measure / 4), at(warmup + 3 * measure / 4)),
        // Two concurrent windows half a farm apart, plus a drop policy.
        2 => {
            let mut plan =
                FaultPlan::fail_window(0, at(warmup + measure / 4), at(warmup + measure / 2));
            plan.events.extend(
                FaultPlan::fail_window(10, at(warmup), at(warmup + 3 * measure / 4)).events,
            );
            plan.drop_after_hiccup_intervals = Some(25);
            plan
        }
        // A seed-driven storm with slow episodes mixed in.
        3 => FaultPlan {
            stochastic: Some(StochasticFaults {
                mean_time_between_failures: SimDuration::from_secs(measure / 4),
                mean_time_to_repair: SimDuration::from_secs(measure / 10),
                slow_fraction: 0.3,
            }),
            ..FaultPlan::none()
        },
        _ => FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full `RunReport` — every derived statistic included — is
    /// identical whether ticks run densely or quiescent intervals are
    /// skipped.
    #[test]
    fn dense_and_sparse_reports_are_identical(cfg in config_strategy()) {
        let mut dense = cfg.clone();
        dense.dense_ticks = true;
        let mut sparse = cfg;
        sparse.dense_ticks = false;
        let a = staggered_striping::server::run(&dense).expect("dense run");
        let b = staggered_striping::server::run(&sparse).expect("sparse run");
        prop_assert_eq!(a, b);
    }
}

/// The sparse scheduler must actually skip intervals on a lightly
/// loaded Figure-8 cell — otherwise the equivalence above is vacuous.
#[test]
fn figure8_striping_cell_skips_ticks() {
    let mut cfg = ServerConfig::paper_striping(1, 10.0, 1994);
    cfg.warmup = SimDuration::from_secs(1800);
    cfg.measure = SimDuration::from_secs(3600);
    let mut server = StripingServer::new(cfg).expect("paper cell");
    while server.step() {}
    let skipped = server.model().ticks_skipped();
    assert!(skipped > 0, "expected skipped intervals, got {skipped}");
}

/// Same guarantee for the VDR baseline model.
#[test]
fn figure8_vdr_cell_skips_ticks() {
    let mut cfg = ServerConfig::paper_vdr(1, 10.0, 1994);
    cfg.warmup = SimDuration::from_secs(1800);
    cfg.measure = SimDuration::from_secs(3600);
    let mut server = VdrServer::new(cfg).expect("paper cell");
    while server.step() {}
    let skipped = server.model().ticks_skipped();
    assert!(skipped > 0, "expected skipped intervals, got {skipped}");
}
