//! Property tests for the placement engines: address bijectivity, exact
//! capacity accounting, and the GCD skew law.

use proptest::prelude::*;
use staggered_striping::core::media::{MediaType, ObjectSpec};
use staggered_striping::core::stride;
use staggered_striping::prelude::*;
use std::collections::HashSet;

fn layout_strategy() -> impl Strategy<Value = StripingLayout> {
    (2u32..60, 0u32..61, 1u32..8, 1u32..200, 0u32..60)
        .prop_filter_map("degree <= disks, start < disks", |(d, k, m, n, s)| {
            (m <= d).then(|| StripingLayout::new(ObjectId(0), s % d, m, n, d, k))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Within one subobject, fragments always land on distinct disks.
    #[test]
    fn fragments_of_a_subobject_are_disjoint(l in layout_strategy()) {
        for i in 0..l.subobjects.min(50) {
            let disks: HashSet<DiskId> = (0..l.degree).map(|j| l.fragment_disk(i, j)).collect();
            prop_assert_eq!(disks.len(), l.degree as usize);
        }
    }

    /// The analytic per-disk fragment count matches brute force and sums
    /// to n × M.
    #[test]
    fn fragments_per_disk_exact(l in layout_strategy()) {
        let analytic = l.fragments_per_disk();
        let mut brute = vec![0u32; l.disks as usize];
        for i in 0..l.subobjects {
            for j in 0..l.degree {
                brute[l.fragment_disk(i, j).index()] += 1;
            }
        }
        prop_assert_eq!(&analytic, &brute);
        let total: u64 = analytic.iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, l.total_fragments());
    }

    /// GCD law: with gcd(D, k) = 1 and enough subobjects, per-disk loads
    /// differ by at most the degree (perfect balance up to edge effects).
    #[test]
    fn coprime_stride_balances(
        d in 3u32..50,
        k in 1u32..50,
        m in 1u32..5,
        cycles in 1u32..5,
    ) {
        prop_assume!(m <= d);
        prop_assume!(staggered_striping::core::frame::gcd(u64::from(d), u64::from(k % d).max(1)) == 1);
        prop_assume!(k % d != 0);
        let n = d * cycles; // whole number of rotations
        let l = StripingLayout::new(ObjectId(0), 0, m, n, d, k);
        let counts = l.fragments_per_disk();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert_eq!(*min, *max, "whole rotations must balance exactly");
        prop_assert_eq!(*max, m * cycles);
    }

    /// The stride analyzer's footprint equals the brute-force footprint.
    #[test]
    fn disks_touched_matches_layout(l in layout_strategy()) {
        let touched: HashSet<DiskId> = (0..l.subobjects)
            .flat_map(|i| (0..l.degree).map(move |j| (i, j)))
            .map(|(i, j)| l.fragment_disk(i, j))
            .collect();
        prop_assert_eq!(
            stride::disks_touched(l.disks, l.stride, l.degree, l.subobjects),
            touched.len() as u32
        );
    }

    /// Place/remove is fully reversible and capacity accounting is exact.
    #[test]
    fn place_remove_roundtrip(
        d in 4u32..20,
        k in 0u32..21,
        cylinders in 20u32..100,
        mbps in 1u64..8,
        n in 1u32..40,
    ) {
        let config = StripingConfig {
            disks: d,
            stride: k,
            fragment: Bytes::megabytes(1),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        };
        let spec = ObjectSpec::new(
            ObjectId(0),
            MediaType::new("t", Bandwidth::mbps(mbps * 20)),
            n,
        );
        prop_assume!(spec.degree(config.b_disk) <= d);
        let mut map = PlacementMap::new(config, cylinders, 1).unwrap();
        let before = map.free_cylinders();
        match map.place_at(&spec, 0) {
            Ok(layout) => {
                let per_disk = layout.fragments_per_disk();
                // Capacity accounting matches the layout arithmetic.
                let used = map.used_cylinders();
                for (disk, (&u, &f)) in used.iter().zip(&per_disk).enumerate() {
                    prop_assert_eq!(u, f, "disk {}", disk);
                }
                map.remove(ObjectId(0)).unwrap();
                prop_assert_eq!(map.free_cylinders(), before);
            }
            Err(Error::DiskFull { .. }) => {
                // Rejection must leave the map untouched.
                prop_assert_eq!(map.free_cylinders(), before);
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}

/// One step of the equivalence workload: place a fresh object with some
/// bandwidth/length, or remove an already-seen id.
#[derive(Debug, Clone)]
enum PlacementOp {
    Place { mbps: u64, subobjects: u32 },
    Remove { victim: usize },
}

fn op_strategy() -> impl Strategy<Value = PlacementOp> {
    // 4:1 place:remove mix via a selector draw.
    (0u32..5, 1u64..8, 1u32..60, 0usize..32).prop_map(|(sel, mbps, subobjects, victim)| {
        if sel < 4 {
            PlacementOp::Place { mbps, subobjects }
        } else {
            PlacementOp::Remove { victim }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lazy (counter-based) engine is observably equivalent to the
    /// materialized (cylinder-allocator) engine: the same operation
    /// sequence produces the same successes, the same *errors* (variant
    /// and every field), the same per-disk used/free cylinders, the same
    /// layouts, and the same skew ratio.
    #[test]
    fn lazy_engine_matches_materialized(
        d in 4u32..24,
        k in 0u32..25,
        cylinders in 10u32..80,
        cpf in 1u32..3,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let config = StripingConfig {
            disks: d,
            stride: k,
            fragment: Bytes::megabytes(2),
            b_disk: Bandwidth::mbps(20),
            parity_group: None,
        };
        let mut lazy = PlacementMap::new(config.clone(), cylinders, cpf).unwrap();
        let mut mat = PlacementMap::new_materialized(config, cylinders, cpf).unwrap();
        prop_assert_eq!(lazy.backend(), PlacementBackend::Lazy);
        prop_assert_eq!(mat.backend(), PlacementBackend::Materialized);
        let mut next_id = 0u32;
        let mut seen: Vec<ObjectId> = Vec::new();
        for op in ops {
            match op {
                PlacementOp::Place { mbps, subobjects } => {
                    let spec = ObjectSpec::new(
                        ObjectId(next_id),
                        MediaType::new("t", Bandwidth::mbps(mbps * 20)),
                        subobjects,
                    );
                    next_id += 1;
                    seen.push(spec.id);
                    let a = lazy.place(&spec);
                    let b = mat.place(&spec);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
                PlacementOp::Remove { victim } => {
                    let id = seen.get(victim % seen.len().max(1)).copied()
                        .unwrap_or(ObjectId(9999));
                    let a = lazy.remove(id);
                    let b = mat.remove(id);
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
            }
            prop_assert_eq!(lazy.used_cylinders(), mat.used_cylinders());
            prop_assert_eq!(lazy.free_cylinders(), mat.free_cylinders());
            prop_assert_eq!(lazy.resident_count(), mat.resident_count());
            prop_assert_eq!(lazy.skew_ratio(), mat.skew_ratio());
            for &id in &seen {
                prop_assert_eq!(lazy.is_resident(id), mat.is_resident(id));
                prop_assert_eq!(lazy.layout(id), mat.layout(id));
            }
        }
    }
}

/// Multiple objects never collide on a cylinder: total used equals the sum
/// of the objects' footprints.
#[test]
fn many_objects_share_the_farm_without_collisions() {
    let config = StripingConfig {
        disks: 12,
        stride: 1,
        fragment: Bytes::megabytes(1),
        b_disk: Bandwidth::mbps(20),
        parity_group: None,
    };
    let mut map = PlacementMap::new(config, 500, 1).unwrap();
    let mut expected = 0u32;
    for i in 0..30u32 {
        let spec = ObjectSpec::new(
            ObjectId(i),
            MediaType::new("m", Bandwidth::mbps(20 * (1 + u64::from(i % 3)))),
            10 + i,
        );
        let layout = map.place(&spec).unwrap();
        expected += layout.degree * layout.subobjects;
    }
    let used: u32 = map.used_cylinders().iter().sum();
    assert_eq!(used, expected);
    assert_eq!(map.resident_count(), 30);
    // Remove every other object; accounting stays exact.
    for i in (0..30u32).step_by(2) {
        map.remove(ObjectId(i)).unwrap();
    }
    let used_after: u32 = map.used_cylinders().iter().sum();
    assert!(used_after < used);
    assert_eq!(map.resident_count(), 15);
}
