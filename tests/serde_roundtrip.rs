//! Serde round-trip tests: configurations and reports must survive
//! JSON serialisation unchanged (they are the interface between the
//! harness binaries, the CSV/JSON artifacts, and any external tooling).

use staggered_striping::prelude::*;
use staggered_striping::server::config::{ArrivalModel, MediaMix, QueuePolicy};

#[test]
fn server_config_roundtrips_through_json() {
    let mut cfg = ServerConfig::paper_striping(64, 20.0, 7);
    cfg.mix = Some(MediaMix::section31_example(3, 10));
    cfg.queue = QueuePolicy::SmallestFirst;
    cfg.arrivals = ArrivalModel::Trace {
        events: vec![(0, 1), (100, 2)],
    };
    let json = serde_json::to_string_pretty(&cfg).unwrap();
    let back: ServerConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn vdr_config_roundtrips() {
    let cfg = ServerConfig::paper_vdr(16, 10.0, 3);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: ServerConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn run_report_roundtrips_and_fields_survive() {
    let cfg = ServerConfig::small_test(2, 9);
    let report = ss_server::run(&cfg).unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
    // Spot-check the JSON carries the headline field by name.
    assert!(json.contains("displays_per_hour"));
    assert!(json.contains("peak_buffer_fragments"));
}

#[test]
fn table4_rows_serialize() {
    use staggered_striping::server::experiment::Table4Row;
    let rows = vec![Table4Row {
        stations: 256,
        improvement_pct: vec![126.1, 602.5, 413.1],
    }];
    let json = serde_json::to_string(&rows).unwrap();
    let back: Vec<Table4Row> = serde_json::from_str(&json).unwrap();
    assert_eq!(rows, back);
}

#[test]
fn core_types_roundtrip() {
    use staggered_striping::core::admission::AdmissionPolicy;
    let layout = StripingLayout::new(ObjectId(3), 4, 5, 3000, 1000, 5);
    let back: StripingLayout =
        serde_json::from_str(&serde_json::to_string(&layout).unwrap()).unwrap();
    assert_eq!(layout, back);

    let policy = AdmissionPolicy::Fragmented {
        max_buffer_fragments: 64,
        max_delay_intervals: 16,
    };
    let back: AdmissionPolicy =
        serde_json::from_str(&serde_json::to_string(&policy).unwrap()).unwrap();
    assert_eq!(policy, back);

    let d = DiskParams::table3();
    let back: DiskParams = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    assert_eq!(d, back);

    let t = TertiaryParams::table3();
    let back: TertiaryParams = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(t, back);
}

#[test]
fn unit_types_roundtrip_with_exact_values() {
    let vals = (
        SimTime::from_micros(123_456_789),
        SimDuration::from_micros(604_800),
        Bytes::new(1_512_000),
        Bandwidth::mbps(100),
        ObjectId(1999),
        DiskId(999),
    );
    let json = serde_json::to_string(&vals).unwrap();
    let back: (SimTime, SimDuration, Bytes, Bandwidth, ObjectId, DiskId) =
        serde_json::from_str(&json).unwrap();
    assert_eq!(vals, back);
}
