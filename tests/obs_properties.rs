//! Property tests for the observability layer (`ss-obs`):
//!
//! * **Zero-cost toggle** — installing a recorder and registry must not
//!   change a single reported number: the run report with observability
//!   on serializes byte-identically to the recorder-off run (which is
//!   itself what the golden tests pin).
//! * **Journal determinism** — the same seed produces the same journal,
//!   byte for byte, across reruns.
//! * **Reconciliation** — the journal is a faithful decomposition of the
//!   report: counting events recovers every aggregate the report
//!   carries, and replaying the read spans through the rotating frame
//!   yields exactly the reads the admissions booked.

use proptest::prelude::*;
use staggered_striping::prelude::*;

/// A small config of either scheme with `failures` outage windows over
/// the middle half of the measurement window; striping cells optionally
/// arm parity + rebuild so the degraded planes have events to emit.
fn obs_config(striping: bool, stations: u32, seed: u64, failures: u32, heal: bool) -> ServerConfig {
    let mut cfg = if striping {
        ServerConfig::small_test(stations, seed)
    } else {
        ServerConfig::small_vdr_test(stations, seed)
    };
    if striping && heal {
        cfg.parity = Some(ParityConfig::group(4));
        cfg.rebuild = Some(RebuildConfig::rate(4));
    }
    let warmup = cfg.warmup.as_micros();
    let measure = cfg.measure.as_micros();
    let fail_at = SimTime::from_micros(warmup + measure / 4);
    let repair_at = SimTime::from_micros(warmup + 3 * measure / 4);
    let mut plan = FaultPlan::none();
    for f in 0..failures {
        let disk = f * (cfg.disks / 2);
        plan.events
            .extend(FaultPlan::fail_window(disk, fail_at, repair_at).events);
    }
    cfg.faults = plan;
    cfg
}

/// Runs `cfg` with a journal recorder and metrics registry installed,
/// returning the report, the captured journal and the registry.
fn run_with_journal(
    cfg: &ServerConfig,
) -> (RunReport, Vec<(u64, ss_obs::Event)>, ss_obs::Registry) {
    let recorder = ss_obs::VecRecorder::new();
    let handle = recorder.handle();
    ss_obs::install(
        Box::new(recorder),
        ss_obs::Registry::new(ss_obs::RegistrySpec {
            disks: cfg.disks,
            interval_us: cfg.interval().as_micros(),
            ..Default::default()
        }),
    );
    let report = staggered_striping::server::run(cfg).expect("valid config");
    let (_, registry) = ss_obs::uninstall().expect("installed above");
    let events = handle.lock().expect("run finished").clone();
    (report, events, registry)
}

/// Renders the journal exactly as the JSONL sink would.
fn journal_bytes(events: &[(u64, ss_obs::Event)]) -> String {
    let mut out = String::new();
    for (at, ev) in events {
        ev.write_jsonl(*at, &mut out);
        out.push('\n');
    }
    out
}

fn count(events: &[(u64, ss_obs::Event)], pred: impl Fn(&ss_obs::Event) -> bool) -> u64 {
    events.iter().filter(|(_, e)| pred(e)).count() as u64
}

/// Sums a projected field over the journal (events where `f` returns
/// `None` contribute nothing).
fn sum(events: &[(u64, ss_obs::Event)], f: impl Fn(&ss_obs::Event) -> Option<u64>) -> u64 {
    events.iter().filter_map(|(_, e)| f(e)).sum()
}

/// Asserts that counting journal events recovers the report aggregates.
fn reconcile(cfg: &ServerConfig, events: &[(u64, ss_obs::Event)], report: &RunReport) {
    use ss_obs::Event;
    let striping = matches!(cfg.scheme, Scheme::Striping { .. });

    let measured_ends = count(events, |e| {
        matches!(e, Event::DisplayEnd { measured: true, .. })
    });
    assert_eq!(measured_ends, report.displays_completed, "display ends");
    assert_eq!(
        count(events, |e| matches!(e, Event::Coalesce { .. })),
        report.coalesces,
        "coalesces"
    );

    let g = report.degraded.clone().unwrap_or_default();
    assert_eq!(
        count(events, |e| matches!(e, Event::DiskFail { .. })),
        g.faults_injected,
        "disk failures"
    );
    assert_eq!(
        count(events, |e| matches!(e, Event::DiskRepair { .. })),
        g.repairs,
        "repairs (scheduled and early-rebuild alike go through the mask)"
    );
    assert_eq!(
        count(events, |e| matches!(e, Event::DisplayDrop { .. })),
        g.streams_dropped,
        "dropped streams"
    );
    if striping {
        assert_eq!(
            count(events, |e| matches!(e, Event::Rescue { .. })),
            g.rescues,
            "fragment rescues"
        );
        assert_eq!(
            sum(events, |e| match e {
                Event::Hiccup { viewers, .. } => Some(1 + viewers),
                _ => None,
            }),
            g.hiccup_intervals,
            "hiccup intervals (each loss charges the primary plus its shared viewers)"
        );
        let h = g.self_heal.unwrap_or_default();
        assert_eq!(
            count(events, |e| matches!(e, Event::ParityPlan { .. })),
            h.degraded_admissions,
            "parity reconstruction plans"
        );
    } else {
        assert_eq!(
            count(events, |e| matches!(e, Event::ClusterRescue { .. })),
            g.rescues,
            "cluster rescues"
        );
        let dropped_hiccups: u64 = events
            .iter()
            .map(|(_, e)| match e {
                Event::DisplayDrop { hiccups, .. } => *hiccups,
                _ => 0,
            })
            .sum();
        assert_eq!(dropped_hiccups, g.hiccup_intervals, "lost intervals");
    }

    // Startup plane: every display open — private admission, shared
    // join or cluster start — records exactly one startup-wait sample.
    let opens = count(events, |e| {
        matches!(
            e,
            Event::AdmitAccept { .. }
                | Event::SharedJoin { .. }
                | Event::ClusterDisplayStart { .. }
        )
    });
    assert_eq!(
        count(events, |e| matches!(e, Event::Startup { .. })),
        opens,
        "one startup sample per display open"
    );

    // Sharing plane (section present exactly when sharing was armed).
    if let Some(s) = &report.sharing {
        assert_eq!(
            count(events, |e| matches!(e, Event::SharedJoin { .. })),
            s.viewers_joined,
            "shared joins"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::CacheAdmit { .. })),
            s.cache_insertions,
            "prefix-cache insertions"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::CacheEvict { .. })),
            s.cache_evictions,
            "prefix-cache evictions"
        );
    } else {
        assert_eq!(
            count(events, |e| matches!(
                e,
                Event::SharedJoin { .. } | Event::CacheAdmit { .. } | Event::CacheEvict { .. }
            )),
            0,
            "sharing events without a sharing section"
        );
    }

    // Distributed plane: routing decisions, compiled node outages and
    // the interconnect ledger all decompose into journal events.
    if let Some(d) = &report.distributed {
        assert_eq!(
            count(events, |e| matches!(e, Event::RouteAssign { .. })),
            d.displays_routed.iter().sum::<u64>(),
            "routed displays"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::NodeOutageCompiled { .. })),
            u64::from(d.node_outages),
            "compiled node outages"
        );
        assert_eq!(
            sum(events, |e| match e {
                Event::LinkBook {
                    from,
                    until,
                    fragments,
                    ..
                } => Some(fragments * (until - from)),
                _ => None,
            }),
            d.remote_fragment_intervals,
            "link-booked fragment intervals"
        );
    } else {
        assert_eq!(
            count(events, |e| matches!(
                e,
                Event::RouteAssign { .. }
                    | Event::NodeOutageCompiled { .. }
                    | Event::LinkBook { .. }
            )),
            0,
            "distributed events without a distributed section"
        );
    }

    // Crash/scrub plane: injected events, recovery passes and the scrub
    // daemon's findings all count straight off the journal.
    if let Some(c) = &report.crash {
        assert_eq!(
            count(events, |e| matches!(e, Event::PowerLoss { .. })),
            c.power_loss_events,
            "power losses"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::TornWrite { .. })),
            c.torn_write_events,
            "torn writes"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::CrashRecovery { .. })),
            c.recoveries,
            "recovery passes"
        );
        assert_eq!(
            count(events, |e| matches!(
                e,
                Event::CrashRecovery { clean: true, .. }
            )),
            c.recoveries_clean,
            "clean recoveries"
        );
        // The stat counts chunks as *issued* while the event records a
        // chunk's completed scan, so the run's final in-flight chunk
        // (if any) is counted but never journaled.
        let chunks_scanned = count(events, |e| matches!(e, Event::ScrubChunk { .. }));
        assert!(
            c.scrub_chunks - chunks_scanned <= 1,
            "at most the in-flight scrub chunk goes unscanned \
             ({} issued, {} scanned)",
            c.scrub_chunks,
            chunks_scanned
        );
        let fragments_scanned = sum(events, |e| match e {
            Event::ScrubChunk { fragments, .. } => Some(*fragments),
            _ => None,
        });
        assert!(
            fragments_scanned <= c.scrub_fragment_intervals,
            "scanned fragments cannot exceed issued fragments"
        );
        if chunks_scanned == c.scrub_chunks {
            assert_eq!(
                fragments_scanned, c.scrub_fragment_intervals,
                "scrubbed fragment intervals"
            );
        }
        assert_eq!(
            sum(events, |e| match e {
                Event::ScrubChunk { found, .. } => Some(*found),
                _ => None,
            }),
            c.latent_found,
            "latent errors found by scrub chunks"
        );
        assert_eq!(
            count(events, |e| matches!(e, Event::ScrubRepair { .. })),
            c.latent_repaired,
            "latent repairs"
        );
    } else {
        assert_eq!(
            count(events, |e| matches!(
                e,
                Event::PowerLoss { .. }
                    | Event::TornWrite { .. }
                    | Event::CrashRecovery { .. }
                    | Event::ScrubChunk { .. }
                    | Event::ScrubRepair { .. }
            )),
            0,
            "crash events without a crash section"
        );
    }

    // The event-sourced read timeline: splitting handovers preserves
    // span length, so expansion must recover exactly the booked reads.
    let (stride, cluster_size) = match &cfg.scheme {
        Scheme::Striping { stride, .. } => (*stride, 0),
        Scheme::Vdr { .. } => (0, cfg.degree()),
    };
    let (nodes, disks_per_node) = match &cfg.distributed {
        Some(d) => (d.topology.nodes, d.topology.disks_per_node),
        None => (1, cfg.disks),
    };
    let meta = ss_obs::TraceMeta {
        disks: cfg.disks,
        stride,
        interval_us: cfg.interval().as_micros(),
        cluster_size,
        nodes,
        disks_per_node,
    };
    let expansion = ss_obs::expand_reads(events, &meta);
    assert_eq!(expansion.unmatched_moves, 0, "every handover splits a span");
    assert_eq!(
        expansion.reads.len() as u64,
        ss_obs::booked_reads(events),
        "expanded reads == sum of degree x subobjects over admissions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The three core guarantees, swept over both schemes, fault counts
    /// and the self-healing knobs.
    #[test]
    fn observability_is_invisible_deterministic_and_faithful(
        seed in 0u64..1_000_000,
        stations in 4u32..=8,
        striping in proptest::bool::ANY,
        failures in 0u32..=2,
        heal in proptest::bool::ANY,
    ) {
        let cfg = obs_config(striping, stations, seed, failures, heal);

        // Recorder off: the plain run the goldens pin.
        let off = staggered_striping::server::run(&cfg).expect("valid config");
        // Recorder on, twice.
        let (on, events_a, registry) = run_with_journal(&cfg);
        let (_, events_b, _) = run_with_journal(&cfg);

        // 1. The toggle is invisible in every reported number.
        prop_assert_eq!(
            serde_json::to_string_pretty(&off).expect("serialize"),
            serde_json::to_string_pretty(&on).expect("serialize"),
            "installing the recorder changed the report"
        );
        // 2. Same seed, same bytes.
        prop_assert_eq!(
            journal_bytes(&events_a),
            journal_bytes(&events_b),
            "journal must be byte-deterministic"
        );
        // 3. The journal decomposes the report.
        reconcile(&cfg, &events_a, &on);
        // The registry agrees with the journal on admission counts
        // (striping admits fragments; VDR admits whole clusters).
        let accepts = count(&events_a, |e| matches!(
            e,
            ss_obs::Event::AdmitAccept { .. } | ss_obs::Event::ClusterDisplayStart { .. }
        ));
        prop_assert_eq!(registry.counter("admissions"), accepts);
        let rejects = count(&events_a, |e| matches!(e, ss_obs::Event::AdmitReject { .. }));
        prop_assert_eq!(registry.counter("rejections"), rejects);
        // One heatmap row and one series point per executed boundary.
        prop_assert_eq!(registry.heatmap_len(), registry.series("utilization").len());
        prop_assert!(registry.heatmap_len() > 0);
    }
}

/// A pinned faulted striping cell with parity + rebuild: every journal
/// plane must actually carry events (the sweep above would pass
/// vacuously on an empty journal).
#[test]
fn journal_planes_are_populated_under_faults() {
    use ss_obs::Event;
    let cfg = obs_config(true, 8, 1994, 1, true);
    let (report, events, registry) = run_with_journal(&cfg);
    reconcile(&cfg, &events, &report);
    assert!(count(&events, |e| matches!(e, Event::AdmitAccept { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::ReadSpan { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::DiskFail { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::RebuildQueued { .. })) > 0);
    assert_eq!(
        count(&events, |e| matches!(e, Event::FaultTimeline { .. })),
        1
    );
    assert_eq!(count(&events, |e| matches!(e, Event::EngineStop { .. })), 1);
    assert!(registry.heatmap_len() > 0);
    // The wasted-fraction series exists and stays within [0, 1].
    let wasted = registry.series("wasted_fraction");
    assert!(!wasted.is_empty());
    assert!(wasted.iter().all(|&(_, v)| (0.0..=1.0).contains(&v)));
}

/// The VDR baseline populates its cluster plane.
#[test]
fn vdr_journal_planes_are_populated() {
    use ss_obs::Event;
    let cfg = obs_config(false, 8, 1994, 1, false);
    let (report, events, _) = run_with_journal(&cfg);
    reconcile(&cfg, &events, &report);
    assert!(count(&events, |e| matches!(e, Event::ClusterDisplayStart { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::DiskFail { .. })) > 0);
}

/// `obs_config` with every post-PR-5 plane armed on top: stream
/// sharing, a two-node distributed farm with one node outage, and the
/// crash/scrub plane (stochastic power losses + torn writes).
fn fully_armed_config(striping: bool) -> ServerConfig {
    let mut cfg = obs_config(striping, 12, 1994, 1, striping);
    cfg.verify_delivery = false;
    cfg.sharing = Some(SharingConfig::window(16));
    let mut dist = DistributedConfig::even(2, cfg.disks);
    let warmup = cfg.warmup.as_micros();
    let measure = cfg.measure.as_micros();
    dist.node_outages = vec![NodeOutage {
        node: 1,
        fail_at: SimTime::from_micros(warmup + measure / 3),
        repair_at: SimTime::from_micros(warmup + measure / 2),
    }];
    cfg.distributed = Some(dist);
    cfg.faults.crash = Some(CrashFaults {
        power_loss_mtbf: Some(SimDuration::from_secs(240)),
        torn_write_mtbf: Some(SimDuration::from_secs(180)),
        ..Default::default()
    });
    cfg.scrub = Some(ScrubConfig::rate(4));
    cfg
}

/// Pinned striping run with every plane armed at once: the sharing,
/// distributed and crash/scrub sections of `reconcile` must all fire
/// non-vacuously and still decompose the report exactly.
#[test]
fn all_planes_reconcile_on_striping() {
    use ss_obs::Event;
    let cfg = fully_armed_config(true);
    let (report, events, _) = run_with_journal(&cfg);
    reconcile(&cfg, &events, &report);
    assert!(report.sharing.is_some(), "sharing section present");
    assert!(report.distributed.is_some(), "distributed section present");
    assert!(report.crash.is_some(), "crash section present");
    assert!(count(&events, |e| matches!(e, Event::SharedJoin { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::CacheAdmit { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::RouteAssign { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::LinkBook { .. })) > 0);
    assert_eq!(
        count(&events, |e| matches!(e, Event::NodeOutageCompiled { .. })),
        1
    );
    assert!(count(&events, |e| matches!(e, Event::PowerLoss { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::CrashRecovery { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::ScrubChunk { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::Startup { .. })) > 0);
}

/// The same fully-armed pin on the VDR baseline.
#[test]
fn all_planes_reconcile_on_vdr() {
    use ss_obs::Event;
    let cfg = fully_armed_config(false);
    let (report, events, _) = run_with_journal(&cfg);
    reconcile(&cfg, &events, &report);
    assert!(report.sharing.is_some(), "sharing section present");
    assert!(report.distributed.is_some(), "distributed section present");
    assert!(report.crash.is_some(), "crash section present");
    assert!(count(&events, |e| matches!(e, Event::SharedJoin { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::RouteAssign { .. })) > 0);
    assert_eq!(
        count(&events, |e| matches!(e, Event::NodeOutageCompiled { .. })),
        1
    );
    assert!(count(&events, |e| matches!(e, Event::PowerLoss { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::CrashRecovery { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::ScrubChunk { .. })) > 0);
    assert!(count(&events, |e| matches!(e, Event::Startup { .. })) > 0);
}
