//! Property tests for the virtual-disk frame and admission control — the
//! correctness core of staggered striping.

use proptest::prelude::*;
use staggered_striping::core::admission::{AdmissionGrant, AdmissionPolicy, IntervalScheduler};
use staggered_striping::prelude::*;

/// A random farm plus a stream of admission attempts.
fn farm_strategy() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, u32)>)> {
    (4u32..40, 0u32..41).prop_flat_map(|(d, k)| {
        let attempts = prop::collection::vec((0u32..d, 1u32..=d.min(6), 1u32..30), 1..40);
        attempts.prop_map(move |a| (d, k, a))
    })
}

/// Replays a set of grants against an independent occupancy matrix and
/// asserts no (virtual disk, interval) cell is used twice and that every
/// read is aligned with its data.
fn check_grants(d: u32, k: u32, grants: &[(AdmissionGrant, u32, u32)]) {
    let frame = VirtualFrame::new(d, k);
    let horizon: u64 = grants
        .iter()
        .map(|(g, _, _)| g.end_interval)
        .max()
        .unwrap_or(0);
    let mut used = vec![vec![false; (horizon + 1) as usize]; d as usize];
    for (g, start_disk, subobjects) in grants {
        assert_eq!(g.virtual_disks.len(), g.read_start.len());
        for (i, (&v, &t0)) in g.virtual_disks.iter().zip(&g.read_start).enumerate() {
            // Alignment (hiccup-freedom): when this virtual disk reads
            // subobject j of fragment i, it must sit over the physical
            // disk that stores that fragment.
            for j in 0..*subobjects {
                let t = t0 + u64::from(j);
                let expect = (u64::from(*start_disk) + u64::from(j) * u64::from(k % d) + i as u64)
                    % u64::from(d);
                assert_eq!(
                    u64::from(frame.physical(v, t)),
                    expect,
                    "misaligned read: D={d} k={k} v={v} j={j}"
                );
                // Exclusivity: no double-booked (disk, interval).
                let cell = &mut used[v as usize][t as usize];
                assert!(!*cell, "double booking: D={d} k={k} v={v} t={t}");
                *cell = true;
            }
            // Buffering sanity: reads never start after delivery.
            assert!(t0 <= g.delivery_start);
        }
        // Buffer bill matches the definition.
        let bill: u64 = g.read_start.iter().map(|&t| g.delivery_start - t).sum();
        assert_eq!(bill, g.buffer_fragments);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contiguous admission: granted reads are aligned and exclusive.
    #[test]
    fn contiguous_grants_are_sound((d, k, attempts) in farm_strategy()) {
        let mut sched = IntervalScheduler::new(VirtualFrame::new(d, k));
        let mut grants = Vec::new();
        for (idx, (start, m, n)) in attempts.iter().enumerate() {
            let t = idx as u64; // one attempt per interval
            if let Ok(g) = sched.try_admit(
                t,
                ObjectId(idx as u32),
                *start,
                *m,
                *n,
                AdmissionPolicy::Contiguous,
            ) {
                prop_assert_eq!(g.delivery_start, t);
                prop_assert_eq!(g.buffer_fragments, 0);
                grants.push((g, *start, *n));
            }
        }
        check_grants(d, k, &grants);
    }

    /// Fragmented admission: ditto, plus the policy's caps are honoured.
    #[test]
    fn fragmented_grants_are_sound((d, k, attempts) in farm_strategy()) {
        let policy = AdmissionPolicy::Fragmented {
            max_buffer_fragments: 24,
            max_delay_intervals: 10,
        };
        let mut sched = IntervalScheduler::new(VirtualFrame::new(d, k));
        let mut grants = Vec::new();
        for (idx, (start, m, n)) in attempts.iter().enumerate() {
            let t = (idx as u64) * 2;
            if let Ok(g) = sched.try_admit(t, ObjectId(idx as u32), *start, *m, *n, policy) {
                prop_assert!(g.buffer_fragments <= 24);
                prop_assert!(g.delivery_start <= t + 10);
                prop_assert!(g.read_start.iter().all(|&r| r >= t));
                grants.push((g, *start, *n));
            }
        }
        check_grants(d, k, &grants);
    }

    /// The frame maps are mutually inverse for every (D, k, t).
    #[test]
    fn frame_inverse(d in 1u32..200, k in 0u32..400, t in 0u64..10_000) {
        let f = VirtualFrame::new(d, k);
        for v in 0..d {
            prop_assert_eq!(f.virtual_of(f.physical(v, t), t), v);
        }
    }

    /// `next_alignment` returns the earliest alignment and never lies.
    #[test]
    fn next_alignment_sound(d in 2u32..30, k in 0u32..30, v in 0u32..30, p in 0u32..30, t0 in 0u64..50) {
        let v = v % d;
        let p = p % d;
        let f = VirtualFrame::new(d, k);
        match f.next_alignment(v, p, t0) {
            Some(t) => {
                prop_assert!(t >= t0);
                prop_assert_eq!(f.physical(v, t), p);
                for earlier in t0..t {
                    prop_assert_ne!(f.physical(v, earlier), p);
                }
            }
            None => {
                // Never aligned within two full rotations => truly unreachable.
                for t in t0..t0 + 2 * u64::from(d) + 2 {
                    prop_assert_ne!(f.physical(v, t), p);
                }
            }
        }
    }
}

/// Admission saturates exactly at the farm's capacity: on an idle farm,
/// D/M simultaneous displays fit and one more is rejected.
#[test]
fn admission_saturates_at_capacity() {
    let mut sched = IntervalScheduler::new(VirtualFrame::new(20, 5));
    for i in 0..4 {
        sched
            .try_admit(0, ObjectId(i), i * 5, 5, 100, AdmissionPolicy::Contiguous)
            .expect("fits");
    }
    assert!(sched
        .try_admit(0, ObjectId(99), 0, 5, 100, AdmissionPolicy::Contiguous)
        .is_err());
    assert_eq!(sched.free_count(0), 0);
    assert!((sched.utilization(0) - 1.0).abs() < 1e-12);
    // After the displays end, everything frees.
    assert_eq!(sched.free_count(100), 20);
}
