//! Integration tests replaying the paper's figures end to end across
//! crates: placement arithmetic → rendering → admission → the delivery
//! algorithms.

use staggered_striping::core::admission::{AdmissionPolicy, IntervalScheduler};
use staggered_striping::core::algorithms::{FragmentRef, SimpleCombined};
use staggered_striping::core::render::{
    cluster_schedule, format_cluster_schedule, layout_grid, ClusterCell,
};
use staggered_striping::prelude::*;

/// Figure 1: the 9-disk simple-striping layout, cell by cell.
#[test]
fn figure1_cells() {
    let x = StripingLayout::new(ObjectId(0), 0, 3, 9, 9, 3);
    // Subobject i, fragment j on disk (3i + j) mod 9.
    for i in 0..9u32 {
        for j in 0..3u32 {
            assert_eq!(x.fragment_disk(i, j), DiskId((3 * i + j) % 9));
        }
    }
    let grid = layout_grid(&[x], &["X"], 3);
    assert!(grid.contains("X0.0") && grid.contains("X2.2"));
}

/// Figure 3: the cluster schedule with X ending and idle slots appearing
/// exactly where the paper shows them.
#[test]
fn figure3_idle_pattern() {
    let table = cluster_schedule(3, 6, &[("X", 1, 1, 3), ("Y", 2, 1, 7), ("Z", 0, 1, 7)]);
    // The paper: cluster 0 idle in intervals 3 and 6; cluster 1 idle in 4;
    // cluster 2 idle in 5.
    let idle = |interval: usize, cluster: usize| table[interval - 1][cluster] == ClusterCell::Idle;
    assert!(idle(3, 0));
    assert!(idle(6, 0));
    assert!(idle(4, 1));
    assert!(idle(5, 2));
    // And every other cell is busy.
    let busy_count = table
        .iter()
        .flatten()
        .filter(|c| !matches!(c, ClusterCell::Idle))
        .count();
    assert_eq!(busy_count, 18 - 4);
    let text = format_cluster_schedule(&table);
    assert!(text.contains("read X(2)"));
}

/// Figure 5: the 12-disk mixed-media layout; checks the exact cells the
/// paper's figure prints for rows 0, 4 and 8.
#[test]
fn figure5_rows() {
    let y = StripingLayout::new(ObjectId(0), 0, 4, 13, 12, 1);
    let x = StripingLayout::new(ObjectId(1), 4, 3, 13, 12, 1);
    let z = StripingLayout::new(ObjectId(2), 7, 2, 13, 12, 1);
    // Row 0: Y0.0-Y0.3 on 0-3, X0.0-X0.2 on 4-6, Z0.0-Z0.1 on 7-8.
    assert_eq!(y.fragment_disk(0, 3), DiskId(3));
    assert_eq!(x.fragment_disk(0, 0), DiskId(4));
    assert_eq!(z.fragment_disk(0, 1), DiskId(8));
    // Row 4 (paper): "Z4.1 | ... | Y4.0 Y4.1 Y4.2 Y4.3 X4.0 X4.1 X4.2 Z4.0"
    assert_eq!(z.fragment_disk(4, 1), DiskId(0)); // wrapped
    assert_eq!(y.fragment_disk(4, 0), DiskId(4));
    assert_eq!(x.fragment_disk(4, 2), DiskId(10));
    assert_eq!(z.fragment_disk(4, 0), DiskId(11));
    // Row 8 (paper): X8.0 on disk 0.
    assert_eq!(x.fragment_disk(8, 0), DiskId(0));
    assert_eq!(y.fragment_disk(8, 1), DiskId(9));
}

/// Figure 6 end to end: fragmented admission on the 8-disk farm, then the
/// Algorithm 1 processes delivering with the granted offsets — checking
/// the paper's walkthrough events (X0.1 read at 0, buffered two intervals;
/// X0.0 read and delivered at 2).
#[test]
fn figure6_end_to_end() {
    let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
    // Six long-running background displays leave only the slots over
    // physical disks 1 and 6 free at interval 0.
    for v in [0u32, 2, 3, 4, 5, 7] {
        sched
            .try_admit(
                0,
                ObjectId(100 + v),
                v,
                1,
                1000,
                AdmissionPolicy::Contiguous,
            )
            .unwrap();
    }
    let grant = sched
        .try_admit(
            0,
            ObjectId(0),
            0,
            2,
            10,
            AdmissionPolicy::Fragmented {
                max_buffer_fragments: 16,
                max_delay_intervals: 8,
            },
        )
        .unwrap();
    assert_eq!(grant.virtual_disks, vec![6, 1]);
    assert_eq!(grant.read_start, vec![2, 0]);
    assert_eq!(grant.delivery_start, 2);
    assert_eq!(grant.buffer_fragments, 2);

    // Fragment 1's process starts at global interval 0 with w_offset 2;
    // fragment 0's starts at global interval 2 with w_offset 0.
    let w1 = u32::try_from(grant.delivery_start - grant.read_start[1]).unwrap();
    assert_eq!(w1, 2);
    let mut p0 = SimpleCombined::new(10, 0, 0);
    let mut p1 = SimpleCombined::new(10, 1, w1);

    // Global interval 0: fragment 1 reads X0.1, outputs nothing.
    let a = p1.tick().unwrap();
    assert_eq!(a.read, Some(FragmentRef::new(0, 1)));
    assert_eq!(a.output, None);
    // Global interval 1: fragment 1 reads X1.1, still nothing out.
    let a = p1.tick().unwrap();
    assert_eq!(a.read, Some(FragmentRef::new(1, 1)));
    assert_eq!(a.output, None);
    assert_eq!(p1.buffered(), 2);
    // Global interval 2: both fragments of X0 delivered together —
    // fragment 0 pipelined straight from disk, fragment 1 from its buffer.
    let a0 = p0.tick().unwrap();
    let a1 = p1.tick().unwrap();
    assert_eq!(a0.read, Some(FragmentRef::new(0, 0)));
    assert_eq!(a0.output, Some(FragmentRef::new(0, 0)));
    assert_eq!(a1.output, Some(FragmentRef::new(0, 1)));
    // Drain everything; each process outputs all ten fragments in order.
    let mut outs0 = vec![a0.output.unwrap()];
    let mut outs1 = vec![a1.output.unwrap()];
    while let Some(a) = p0.tick() {
        outs0.extend(a.output);
    }
    while let Some(a) = p1.tick() {
        outs1.extend(a.output);
    }
    assert_eq!(outs0.len(), 10);
    assert_eq!(outs1.len(), 10);
    for (s, (o0, o1)) in outs0.iter().zip(&outs1).enumerate() {
        assert_eq!(*o0, FragmentRef::new(s as u32, 0));
        assert_eq!(*o1, FragmentRef::new(s as u32, 1));
    }
}

/// The virtual frame really is the paper's rotation: Figure 6's free slot
/// over disk 6 reaches disk 0 at interval 2.
#[test]
fn figure6_slot_rotation() {
    let f = VirtualFrame::new(8, 1);
    let v = f.virtual_of(6, 0);
    assert_eq!(f.physical(v, 1), 7);
    assert_eq!(f.physical(v, 2), 0);
    assert_eq!(f.next_alignment(v, 0, 0), Some(2));
}
