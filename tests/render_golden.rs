//! Golden-output tests for the figure renderers: the exact text the
//! examples print, pinned so placement or rendering drift is caught.

use staggered_striping::core::admission::{AdmissionPolicy, IntervalScheduler};
use staggered_striping::core::render::{
    cluster_schedule, format_cluster_schedule, layout_grid, occupancy_raster,
};
use staggered_striping::core::schedule::DeliverySchedule;
use staggered_striping::prelude::*;

#[test]
fn figure1_golden() {
    let x = StripingLayout::new(ObjectId(0), 0, 3, 9, 9, 3);
    let grid = layout_grid(&[x], &["X"], 3);
    let expected = [
        "             Disk 0 Disk 1 Disk 2 Disk 3 Disk 4 Disk 5 Disk 6 Disk 7 Disk 8",
        "Subobject 0  X0.0   X0.1   X0.2",
        "Subobject 1                       X1.0   X1.1   X1.2",
        "Subobject 2                                            X2.0   X2.1   X2.2",
        "",
    ]
    .join("\n");
    assert_eq!(grid, expected, "\n{grid}");
}

#[test]
fn figure4_golden_first_rows() {
    let x = StripingLayout::new(ObjectId(0), 0, 3, 8, 8, 1);
    let grid = layout_grid(&[x], &["X"], 3);
    let expected = [
        "             Disk 0 Disk 1 Disk 2 Disk 3 Disk 4 Disk 5 Disk 6 Disk 7",
        "Subobject 0  X0.0   X0.1   X0.2",
        "Subobject 1         X1.0   X1.1   X1.2",
        "Subobject 2                X2.0   X2.1   X2.2",
        "",
    ]
    .join("\n");
    assert_eq!(grid, expected, "\n{grid}");
}

#[test]
fn figure3_golden() {
    let table = cluster_schedule(3, 6, &[("X", 1, 1, 3), ("Y", 2, 1, 7), ("Z", 0, 1, 7)]);
    let text = format_cluster_schedule(&table);
    let expected = [
        "    CLUSTER 0     CLUSTER 1     CLUSTER 2",
        "1   read Z(1)     read X(1)     read Y(1)",
        "2   read Y(2)     read Z(2)     read X(2)",
        "3   idle          read Y(3)     read Z(3)",
        "4   read Z(4)     idle          read Y(4)",
        "5   read Y(5)     read Z(5)     idle",
        "6   idle          read Y(6)     read Z(6)",
        "",
    ]
    .join("\n");
    assert_eq!(text, expected, "\n{text}");
}

#[test]
fn figure6_raster_golden() {
    let mut sched = IntervalScheduler::new(VirtualFrame::new(8, 1));
    for v in [0u32, 2, 3, 4, 5, 7] {
        sched
            .try_admit(
                0,
                ObjectId(100 + v),
                v,
                1,
                1000,
                AdmissionPolicy::Contiguous,
            )
            .unwrap();
    }
    let grant = sched
        .try_admit(
            0,
            ObjectId(0),
            0,
            2,
            10,
            AdmissionPolicy::Fragmented {
                max_buffer_fragments: 16,
                max_delay_intervals: 8,
            },
        )
        .unwrap();
    let layout = StripingLayout::new(ObjectId(0), 0, 2, 10, 8, 1);
    let ds = DeliverySchedule::from_grant(&grant, &layout, sched.frame());
    let raster = occupancy_raster(&sched, 0, 3, &[('X', &ds)]);
    // Fragment 1's slot starts over disk 1 and marches right; fragment
    // 0's slot (over disk 6 at t=0) reaches disk 0 at t=2 — the Figure 6
    // timeline.
    let expected = [
        "         0 1 2 3 4 5 6 7",
        "t=0      # X # # # # # #",
        "t=1      # # X # # # # #",
        "t=2      X # # X # # # #",
        "t=3      # X # # X # # #",
        "",
    ]
    .join("\n");
    assert_eq!(raster, expected, "\n{raster}");
}
