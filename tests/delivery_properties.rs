//! Property tests for the delivery state machines (Algorithms 1 and 2)
//! and the low-bandwidth pairing schedule.

use proptest::prelude::*;
use staggered_striping::core::algorithms::{
    CoalesceRequest, FragmentRef, SimpleCombined, WriteThread,
};
use staggered_striping::core::low_bandwidth::PairingSchedule;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Algorithm 1 delivers every fragment exactly once, in order, with
    /// the buffer bounded by w_offset and drained at the end.
    #[test]
    fn algorithm1_delivers_everything(n in 1u32..200, frag in 0u32..8, w in 0u32..30) {
        let mut p = SimpleCombined::new(n, frag, w);
        let mut outputs = Vec::new();
        let mut reads = Vec::new();
        let mut max_buf = 0;
        let mut ticks = 0u32;
        while let Some(a) = p.tick() {
            ticks += 1;
            outputs.extend(a.output);
            reads.extend(a.read);
            max_buf = max_buf.max(p.buffered());
        }
        prop_assert_eq!(ticks, n + w);
        prop_assert_eq!(outputs.len(), n as usize);
        prop_assert_eq!(reads.len(), n as usize);
        for (i, o) in outputs.iter().enumerate() {
            prop_assert_eq!(*o, FragmentRef::new(i as u32, frag));
        }
        prop_assert!(max_buf <= w.max(1));
        prop_assert_eq!(p.buffered(), 0);
        prop_assert!(p.tick().is_none());
    }

    /// Algorithm 2 under a random single coalesce: never panics, the
    /// output count is exactly reduced by the quiet period, outputs stay
    /// strictly increasing in subobject index, and the fragment index
    /// switches exactly once.
    #[test]
    fn algorithm2_single_coalesce_is_consistent(
        n in 5u32..100,
        w in 1u32..10,
        at in 0u32..40,
        new_frag in 0u32..6,
        skip in 0u32..6,
    ) {
        let mut wt = WriteThread::new(n, 2, w);
        let mut outputs: Vec<FragmentRef> = Vec::new();
        let mut requested = false;
        let mut t = 0u32;
        while !wt.is_done() {
            if t == at && !requested {
                // A coalesce may arrive at any point during delivery.
                requested = wt.request_coalesce(CoalesceRequest { new_frag, skip_write: skip }).is_ok();
            }
            outputs.extend(wt.tick());
            t += 1;
            prop_assert!(t <= n + w + 1, "runaway thread");
        }
        // Without a coalesce the thread outputs n fragments; each quiet
        // interval consumes one output slot.
        if requested {
            let lost = outputs.len() as i64 - i64::from(n);
            prop_assert!(lost <= 0 && lost >= -i64::from(skip) - 1,
                "outputs {} of {} with skip {}", outputs.len(), n, skip);
        } else {
            prop_assert_eq!(outputs.len(), n as usize);
        }
        // Subobject indices strictly increase (delivery never rewinds).
        for pair in outputs.windows(2) {
            prop_assert!(pair[1].sub > pair[0].sub);
        }
        // Fragment index changes at most once, to the coalesce target.
        let frags: Vec<u32> = outputs.iter().map(|o| o.frag).collect();
        let switches = frags.windows(2).filter(|p| p[0] != p[1]).count();
        prop_assert!(switches <= 1);
        if switches == 1 {
            prop_assert_eq!(*frags.last().unwrap(), new_frag);
        }
    }

    /// The pairing schedule reads every subobject of both objects exactly
    /// once and transmits continuously.
    #[test]
    fn pairing_schedule_sound(n in 0u32..100) {
        let s = PairingSchedule::pair(n);
        prop_assert_eq!(
            s.half_intervals.len(),
            if n == 0 { 0 } else { 2 * n as usize + 1 }
        );
        let counts = s.verify_continuity().unwrap();
        if n > 0 {
            prop_assert_eq!(counts, [2 * n, 2 * n]);
        }
    }
}

/// Directed re-run of the recorded proptest regression (see
/// `delivery_properties.proptest-regressions`, which shrank to
/// `n = 5, w = 6, at = 0, new_frag = 0, skip = 0`): a zero-skip
/// coalesce requested *before the first tick*, with the buffer window
/// wider than the object. The sidecar already replays this seed before
/// novel cases, but proptest silently skips it if the file is lost or
/// the strategy shape drifts — this pins the scenario unconditionally.
#[test]
fn algorithm2_coalesce_before_first_tick_keeps_every_output() {
    let n = 5u32;
    let mut wt = WriteThread::new(n, 2, 6);
    wt.request_coalesce(CoalesceRequest {
        new_frag: 0,
        skip_write: 0,
    })
    .unwrap();
    let mut outputs: Vec<FragmentRef> = Vec::new();
    let mut t = 0u32;
    while !wt.is_done() {
        outputs.extend(wt.tick());
        t += 1;
        assert!(t <= n + 6 + 1, "runaway thread");
    }
    // skip_write = 0 grants at most one quiet interval; delivery must
    // not rewind and must stay on the (unchanged) fragment index.
    assert!(
        outputs.len() == n as usize || outputs.len() == n as usize - 1,
        "outputs {} of {n}",
        outputs.len()
    );
    for pair in outputs.windows(2) {
        assert!(pair[1].sub > pair[0].sub);
    }
    // The backlog window (6) covers the whole object (5), so every
    // output drains from the pre-coalesce fragment index — the switch
    // never becomes visible. This degenerate shape is what the shrink
    // converged on: the historical bug double-counted exactly here.
    let frags: Vec<u32> = outputs.iter().map(|o| o.frag).collect();
    let switches = frags.windows(2).filter(|p| p[0] != p[1]).count();
    assert!(switches <= 1, "fragment index oscillated: {frags:?}");
    if switches == 1 {
        assert_eq!(*frags.last().unwrap(), 0, "ends on the coalesce target");
    }
}

/// A coalesce request while one is active must be rejected (the paper's
/// stated precondition), and a request after completion works again.
#[test]
fn algorithm2_back_to_back_coalesces() {
    let mut wt = WriteThread::new(50, 1, 4);
    for _ in 0..6 {
        wt.tick();
    }
    wt.request_coalesce(CoalesceRequest {
        new_frag: 0,
        skip_write: 2,
    })
    .unwrap();
    wt.tick(); // begins draining the 4-fragment backlog
    assert!(wt
        .request_coalesce(CoalesceRequest {
            new_frag: 1,
            skip_write: 1
        })
        .is_err());
    // Finish the drain (3 more) and the quiet period (2).
    for _ in 0..5 {
        wt.tick();
    }
    assert!(!wt.coalescing());
    wt.request_coalesce(CoalesceRequest {
        new_frag: 1,
        skip_write: 0,
    })
    .unwrap();
}
