//! Property tests for the failure-aware admission retry queue (the
//! backoff machinery armed when parity groups are configured and a disk
//! is out):
//!
//! * **Retry cap** — no waiter is ever re-attempted more than
//!   `max_retries` times; exhausted waiters park until the next fault
//!   transition or rebuild completion instead of spinning.
//! * **Arrival order** — backoff delays never reorder requests that
//!   arrived at the same tick: once an arrival tick is in the past, its
//!   waiters only ever leave the queue (admitted), never swap places.
//!   Across ticks the queue stays sorted by arrival time.
//! * **Determinism** — the randomized backoff draws from a dedicated
//!   seeded RNG stream, so reruns of the same seed are byte-identical.

use proptest::prelude::*;
use staggered_striping::prelude::*;
use std::collections::BTreeMap;

/// A striping config with parity armed (so the backoff queue is live),
/// time-fragmented admission, and `failures` outage windows spanning the
/// middle half of the measurement window.
fn backoff_config(
    stations: u32,
    seed: u64,
    max_retries: u32,
    max_backoff: u64,
    rebuild: Option<u64>,
    failures: u32,
) -> ServerConfig {
    let mut cfg = ServerConfig::small_test(stations, seed);
    cfg.scheme = Scheme::Striping {
        stride: 1,
        policy: AdmissionPolicy::Fragmented {
            max_buffer_fragments: 64,
            max_delay_intervals: 16,
        },
        cluster_round: None,
    };
    cfg.parity = Some(ParityConfig {
        group: 5,
        max_retries,
        max_backoff_intervals: max_backoff,
    });
    cfg.rebuild = rebuild.map(RebuildConfig::rate);
    let warmup = cfg.warmup.as_micros();
    let measure = cfg.measure.as_micros();
    let fail_at = SimTime::from_micros(warmup + measure / 4);
    let repair_at = SimTime::from_micros(warmup + 3 * measure / 4);
    let mut plan = FaultPlan::none();
    for f in 0..failures {
        let disk = f * (cfg.disks / 2);
        plan.events
            .extend(FaultPlan::fail_window(disk, fail_at, repair_at).events);
    }
    cfg.faults = plan;
    cfg
}

/// True when `needle` can be obtained from `hay` by deletions alone
/// (order preserved) — the only legal evolution of a frozen arrival
/// tick's waiter group.
fn is_subsequence(needle: &[ObjectId], hay: &[ObjectId]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Groups a queue snapshot by arrival tick, preserving queue order
/// within each group.
fn by_arrival(queue: &[(ObjectId, u64)]) -> BTreeMap<u64, Vec<ObjectId>> {
    let mut groups: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
    for &(object, issued) in queue {
        groups.entry(issued).or_default().push(object);
    }
    groups
}

/// Steps `cfg` to completion, asserting the cap and ordering invariants
/// at every event. Returns the peak attempt count seen, so callers can
/// check the machinery was actually exercised.
fn check_stepped_invariants(cfg: ServerConfig, max_retries: u32) -> u32 {
    let mut server = StripingServer::new(cfg).expect("valid config");
    let mut peak = 0;
    // Arrival-tick groups as of the previous snapshot, plus the time it
    // was taken: a group is frozen (no more same-tick appends possible)
    // only once the snapshot time has moved past its arrival tick.
    let mut prev: BTreeMap<u64, Vec<ObjectId>> = BTreeMap::new();
    let mut prev_now = 0;
    while server.step() {
        let now = server.now().as_micros();
        let attempts = server.model().max_waiter_attempts();
        peak = peak.max(attempts);
        assert!(
            attempts <= max_retries,
            "waiter re-attempted past the cap: {attempts} > {max_retries}"
        );
        let queue = server.model().waiter_queue();
        assert!(
            queue.windows(2).all(|w| w[0].1 <= w[1].1),
            "waiter queue not in arrival order at {now} µs: {queue:?}"
        );
        let groups = by_arrival(&queue);
        for (&tick, objects) in &prev {
            if tick >= prev_now {
                continue; // group could still grow when last observed
            }
            let current = groups.get(&tick).map_or(&[][..], Vec::as_slice);
            assert!(
                is_subsequence(current, objects),
                "same-tick arrivals reordered at {now} µs (tick {tick}): \
                 {objects:?} -> {current:?}"
            );
        }
        prev = groups;
        prev_now = now;
    }
    let m = server.model();
    assert_eq!(m.mask().down_count(), 0, "all disks back up at the end");
    peak
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sweeping the backoff knobs and the rebuild rate: the retry cap
    /// holds at every event, same-tick arrival order is never disturbed,
    /// and the full report is byte-identical across same-seed reruns.
    #[test]
    fn backoff_respects_cap_order_and_seed(
        seed in 0u64..1_000_000,
        stations in 4u32..=8,
        max_retries in 1u32..=6,
        max_backoff in 1u64..=8,
        rebuild in (0usize..4).prop_map(|i| [None, Some(1u64), Some(4), Some(16)][i]),
        failures in 1u32..=2,
    ) {
        let cfg = backoff_config(stations, seed, max_retries, max_backoff, rebuild, failures);
        check_stepped_invariants(cfg.clone(), max_retries);
        let a = staggered_striping::server::run(&cfg).expect("valid config");
        let b = staggered_striping::server::run(&cfg).expect("valid config");
        prop_assert_eq!(
            serde_json::to_string_pretty(&a).expect("serialize"),
            serde_json::to_string_pretty(&b).expect("serialize"),
            "backoff draws must come from the seeded stream"
        );
    }
}

/// A pinned heavy cell (8 stations, slow rebuild) where the outage is
/// long enough that admission rejections actually happen: the backoff
/// counters must move, and the stepped invariants must hold while they
/// do.
#[test]
fn backoff_machinery_is_exercised_under_load() {
    let cfg = backoff_config(8, 1994, 3, 8, Some(1), 1);
    let peak = check_stepped_invariants(cfg.clone(), 3);
    assert!(peak > 0, "the pinned cell must drive waiters into backoff");
    let report = staggered_striping::server::run(&cfg).expect("valid config");
    let heal = report
        .degraded
        .expect("outage ran")
        .self_heal
        .expect("parity admissions happened");
    assert!(heal.backoff_retries > 0, "retries counted: {heal:?}");
    assert!(
        heal.degraded_admissions > 0,
        "parity reconstruction admitted streams through the outage"
    );
}
