//! Property tests for the SLO/QoS plane (`ss-obs`'s `qos`/`slo`/`health`
//! modules) over real server runs:
//!
//! * **Ledger ⇄ report reconciliation** — folding the journal into the
//!   per-display QoS ledger recovers the run report's aggregates
//!   exactly (completions, drops, rescues, the hiccup bill, shared
//!   joins), on both schemes, faulted or not.
//! * **Alert determinism** — the same seed produces the same alerts,
//!   the same outcomes and the same incident attribution, run to run.
//! * **Alert well-formedness** — every page names a real SLO, covers a
//!   non-empty window inside the journal horizon, and is hot on both
//!   burn windows (the two-window rule).
//! * **Root-cause attribution** — the `node_grid` 1-node-outage cell
//!   produces at least one SLO breach during the outage, and the
//!   incident timeline attributes it to the dark node (pinned).

use proptest::prelude::*;
use staggered_striping::prelude::*;

/// A small config of either scheme, optionally with a disk outage over
/// the middle half of the measurement window.
fn slo_config(striping: bool, stations: u32, seed: u64, failures: u32) -> ServerConfig {
    let mut cfg = if striping {
        ServerConfig::small_test(stations, seed)
    } else {
        ServerConfig::small_vdr_test(stations, seed)
    };
    let warmup = cfg.warmup.as_micros();
    let measure = cfg.measure.as_micros();
    let fail_at = SimTime::from_micros(warmup + measure / 4);
    let repair_at = SimTime::from_micros(warmup + 3 * measure / 4);
    let mut plan = FaultPlan::none();
    for f in 0..failures {
        let disk = f * (cfg.disks / 2);
        plan.events
            .extend(FaultPlan::fail_window(disk, fail_at, repair_at).events);
    }
    cfg.faults = plan;
    cfg
}

/// Runs `cfg` with a journal recorder installed, returning the report
/// and the captured journal.
fn run_with_journal(cfg: &ServerConfig) -> (RunReport, Vec<(u64, ss_obs::Event)>) {
    let recorder = ss_obs::VecRecorder::new();
    let handle = recorder.handle();
    ss_obs::install(
        Box::new(recorder),
        ss_obs::Registry::new(ss_obs::RegistrySpec {
            disks: cfg.disks,
            interval_us: cfg.interval().as_micros(),
            ..Default::default()
        }),
    );
    let report = staggered_striping::server::run(cfg).expect("valid config");
    let _ = ss_obs::uninstall().expect("installed above");
    let events = handle.lock().expect("run finished").clone();
    (report, events)
}

/// The QoS ledger's totals must recover the report's aggregates — the
/// same check `ops_report` hard-gates before writing its dashboard.
fn reconcile_ledger(
    cfg: &ServerConfig,
    events: &[(u64, ss_obs::Event)],
    report: &RunReport,
    ledger: &ss_obs::QosLedger,
) {
    use ss_obs::Event;
    let t = ledger.totals(events);
    assert_eq!(t.ends_measured, report.displays_completed, "measured ends");
    let g = report.degraded.clone().unwrap_or_default();
    assert_eq!(t.drops, g.streams_dropped, "drops");
    assert_eq!(t.rescues, g.rescues, "rescues");
    let hiccup_intervals: u64 = events
        .iter()
        .map(|(_, e)| match e {
            Event::Hiccup { viewers, .. } => 1 + viewers,
            _ => 0,
        })
        .sum();
    let billed = if matches!(cfg.scheme, Scheme::Striping { .. }) {
        hiccup_intervals
    } else {
        t.drop_hiccup_intervals
    };
    assert_eq!(billed, g.hiccup_intervals, "hiccup bill");
    if let Some(s) = &report.sharing {
        assert_eq!(t.shared_joins, s.viewers_joined, "shared joins");
    }
    let opens = events
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                Event::AdmitAccept { .. }
                    | Event::SharedJoin { .. }
                    | Event::ClusterDisplayStart { .. }
            )
        })
        .count() as u64;
    assert_eq!(t.opened, opens, "display opens");
    assert!(t.startup_samples <= t.opened, "startup samples bound opens");
}

/// Every alert must describe a valid journal window, hot on both burn
/// windows of a real SLO.
fn check_alerts(slo: &ss_obs::SloReport, specs: &[ss_obs::SloSpec]) {
    for a in &slo.alerts {
        assert!(a.from < a.until, "alert window non-empty");
        assert!(a.until <= slo.horizon, "alert inside the horizon");
        let spec = &specs[a.slo as usize];
        assert!(
            a.fast_burn >= spec.alert_burn && a.slow_burn >= spec.alert_burn,
            "two-window rule: both burns at or above {} ({} / {})",
            spec.alert_burn,
            a.fast_burn,
            a.slow_burn
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Ledger reconciliation, alert determinism and well-formedness,
    /// swept over both schemes and fault counts.
    #[test]
    fn slo_plane_reconciles_and_is_deterministic(
        seed in 0u64..1_000_000,
        stations in 4u32..=8,
        striping in proptest::bool::ANY,
        failures in 0u32..=2,
    ) {
        let cfg = slo_config(striping, stations, seed, failures);
        let interval_us = cfg.interval().as_micros();
        let specs = ss_obs::SloSpec::default_set(interval_us);

        let (report, events_a) = run_with_journal(&cfg);
        let (_, events_b) = run_with_journal(&cfg);

        let ledger = ss_obs::QosLedger::from_events(&events_a);
        reconcile_ledger(&cfg, &events_a, &report, &ledger);

        let slo_a = ss_obs::evaluate(&specs, &ledger, &events_a, interval_us);
        check_alerts(&slo_a, &specs);

        // Same seed, same verdicts: the second capture evaluates to the
        // same alerts, outcomes and incident attribution.
        let ledger_b = ss_obs::QosLedger::from_events(&events_b);
        prop_assert_eq!(ledger.totals(&events_a), ledger_b.totals(&events_b));
        let slo_b = ss_obs::evaluate(&specs, &ledger_b, &events_b, interval_us);
        prop_assert_eq!(&slo_a.alerts, &slo_b.alerts);
        prop_assert_eq!(slo_a.horizon, slo_b.horizon);
        for (oa, ob) in slo_a.outcomes.iter().zip(&slo_b.outcomes) {
            prop_assert_eq!(oa.good, ob.good);
            prop_assert_eq!(oa.bad, ob.bad);
            prop_assert_eq!(oa.overall_burn, ob.overall_burn);
            prop_assert_eq!(oa.pass, ob.pass);
            prop_assert_eq!(oa.alerts, ob.alerts);
        }
        let (nodes, dpn) = match &cfg.distributed {
            Some(d) => (d.topology.nodes, d.topology.disks_per_node),
            None => (1, cfg.disks),
        };
        let board_a = ss_obs::HealthBoard::from_events(
            &events_a, cfg.disks, nodes, dpn, interval_us, slo_a.horizon,
        );
        let board_b = ss_obs::HealthBoard::from_events(
            &events_b, cfg.disks, nodes, dpn, interval_us, slo_b.horizon,
        );
        let render = |incidents: &[ss_obs::Incident]| -> Vec<(u64, u64, bool, u32, u64, u64)> {
            incidents
                .iter()
                .flat_map(|i| {
                    i.causes.iter().map(move |c| {
                        (i.alert.from, i.alert.until, c.node, c.id, c.span.from, c.span.until)
                    })
                })
                .collect()
        };
        prop_assert_eq!(
            render(&board_a.incidents(&slo_a.alerts)),
            render(&board_b.incidents(&slo_b.alerts))
        );

        // Each breach round-trips through its typed journal event.
        for a in &slo_a.alerts {
            let mut line = String::new();
            a.to_event().write_jsonl(a.until * interval_us, &mut line);
            let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
            let serde_json::Value::Map(m) = v else { panic!("object") };
            assert!(m.iter().any(|(k, val)| k == "k"
                && matches!(val, serde_json::Value::Str(s) if s == "slo_breach")));
        }
    }
}

/// The `node_grid` 1-node-outage cell, pinned: darking node 1 of 3 for
/// the middle half of the measurement window must breach at least one
/// SLO *during the outage*, and the incident timeline must attribute
/// that breach to the dark node (root cause), not leave it dangling.
#[test]
fn node_outage_breach_is_attributed_to_the_dark_node() {
    let mut cfg = ServerConfig::small_test(6, 1994);
    cfg.disks = 24;
    cfg.verify_delivery = false;
    cfg.warmup = SimDuration::from_secs(300);
    cfg.measure = SimDuration::from_secs(1200);
    cfg.parity = Some(ParityConfig::group(6));
    cfg.rebuild = Some(RebuildConfig::rate(8));
    let mut d = DistributedConfig::even(3, cfg.disks);
    let fail_at = SimTime::from_secs(300 + 1200 / 4);
    let repair_at = SimTime::from_secs(300 + 3 * 1200 / 4);
    d.node_outages = vec![NodeOutage {
        node: 1,
        fail_at,
        repair_at,
    }];
    cfg.distributed = Some(d);

    let interval_us = cfg.interval().as_micros();
    let (report, events) = run_with_journal(&cfg);
    let ledger = ss_obs::QosLedger::from_events(&events);
    reconcile_ledger(&cfg, &events, &report, &ledger);

    let specs = ss_obs::SloSpec::default_set(interval_us);
    let slo = ss_obs::evaluate(&specs, &ledger, &events, interval_us);
    check_alerts(&slo, &specs);
    let board = ss_obs::HealthBoard::from_events(&events, 24, 3, 8, interval_us, slo.horizon);
    let incidents = board.incidents(&slo.alerts);

    // The compiled outage darks node 1 at `fail_at`; the hot-spare
    // rebuild then resurrects member disks early, so the rollup shows a
    // dark span opening at the outage (not spanning it — early repair
    // is the self-healing plane doing its job).
    let outage_from = fail_at.as_micros() / interval_us;
    let outage_until = repair_at.as_micros() / interval_us;
    let dark = board.nodes[1]
        .iter()
        .find(|s| s.state == ss_obs::HealthState::Dark)
        .copied()
        .expect("node 1's rollup carries a dark span");
    assert!(
        dark.from >= outage_from && dark.from <= outage_from + 2 && dark.until <= outage_until,
        "the dark span opens at the compiled outage: [{}, {}) vs outage [{outage_from}, {outage_until})",
        dark.from,
        dark.until
    );

    // Root-cause attribution, the pinned acceptance check: at least one
    // SLO breach overlaps the dark span, and every such breach names
    // the dark node as a cause.
    let during_dark: Vec<_> = incidents
        .iter()
        .filter(|i| i.alert.from < dark.until && i.alert.until > dark.from)
        .collect();
    assert!(
        !during_dark.is_empty(),
        "darking 8 of 24 disks must page at least one SLO \
         (got {} alerts total, none over [{}, {}))",
        slo.alerts.len(),
        dark.from,
        dark.until
    );
    assert!(
        during_dark.iter().all(|i| i
            .causes
            .iter()
            .any(|c| c.node && c.id == 1 && c.span.state == ss_obs::HealthState::Dark)),
        "every breach overlapping the dark span names node 1 dark as a cause"
    );
    // And the hiccup-free SLO specifically pages during the outage —
    // losing a third of the farm shreds delivery for the affected
    // streams.
    assert!(
        slo.alerts
            .iter()
            .any(|a| a.slo == 1 && a.from < outage_until && a.until > outage_from),
        "the hiccup-free SLO pages during the outage"
    );
}
