//! Property tests for delivery schedules and materialization plans — the
//! system-level hiccup-freedom and no-reposition guarantees.

use proptest::prelude::*;
use staggered_striping::core::admission::{AdmissionPolicy, IntervalScheduler};
use staggered_striping::core::coalesce::ActiveFragmentedDisplay;
use staggered_striping::core::materialize::MaterializationPlan;
use staggered_striping::core::schedule::DeliverySchedule;
use staggered_striping::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every grant the scheduler hands out expands into a verified
    /// hiccup-free delivery schedule, under random farms and loads, for
    /// both admission policies.
    #[test]
    fn every_grant_is_hiccup_free(
        d in 4u32..24,
        k in 1u32..24,
        m in 1u32..5,
        n in 1u32..30,
        background in 0u32..6,
        fragmented in proptest::bool::ANY,
    ) {
        prop_assume!(m <= d);
        let frame = VirtualFrame::new(d, k);
        let mut sched = IntervalScheduler::new(frame);
        // Random background occupancy.
        for b in 0..background {
            let start = (b * 7) % d;
            let _ = sched.try_admit(
                0,
                ObjectId(1000 + b),
                start,
                1 + (b % m.min(d)),
                20,
                AdmissionPolicy::Contiguous,
            );
        }
        let policy = if fragmented {
            AdmissionPolicy::Fragmented {
                max_buffer_fragments: 32,
                max_delay_intervals: 8,
            }
        } else {
            AdmissionPolicy::Contiguous
        };
        let start_disk = (3 * k) % d;
        if let Ok(grant) = sched.try_admit(5, ObjectId(0), start_disk, m, n, policy) {
            let layout = StripingLayout::new(ObjectId(0), start_disk, m, n, d, k);
            let schedule = DeliverySchedule::from_grant(&grant, &layout, &frame);
            schedule.verify(&layout).unwrap();
            prop_assert_eq!(schedule.reads.len(), (n * m) as usize);
            prop_assert_eq!(schedule.outputs.len(), (n * m) as usize);
            prop_assert_eq!(schedule.peak_buffered(), grant.buffer_fragments);
        }
    }

    /// Dynamic coalescing preserves hiccup-freedom: after any sequence of
    /// handovers, every fragment's reads (split across the old and new
    /// disks at the handover subobject) still hit the disk that stores the
    /// data, never double-book an occupancy cell, and never read after
    /// the delivery instant.
    #[test]
    fn coalescing_preserves_hiccup_freedom(
        d in 6u32..20,
        m in 2u32..4,
        n in 10u32..40,
        frees in prop::collection::vec(0u32..20, 1..4),
        when in prop::collection::vec(1u64..30, 1..5),
    ) {
        prop_assume!(m <= d - 2);
        let frame = VirtualFrame::new(d, 1);
        let mut sched = IntervalScheduler::new(frame);
        // Background occupancy leaving a fragmented-looking hole pattern:
        // block everything except two free slots far apart.
        for v in 0..d {
            if v != 1 && v != (1 + m + 1) % d {
                let end = if frees.contains(&(v % 20)) { 8 } else { 1000 };
                sched.set_free_from(v, end);
            }
        }
        let Ok(grant) = sched.try_admit(
            0,
            ObjectId(0),
            0,
            m,
            n,
            AdmissionPolicy::Fragmented {
                max_buffer_fragments: 64,
                max_delay_intervals: 12,
            },
        ) else {
            return Ok(());
        };
        let layout = StripingLayout::new(ObjectId(0), 0, m, n, d, 1);
        let mut state = ActiveFragmentedDisplay::from_grant(&grant, 0, n);
        // Coalesce instants must be monotone (time moves forward).
        let mut when = when.clone();
        when.sort_unstable();
        // Record read phases: (frag, from_sub, to_sub, base) segments.
        let mut segments: Vec<(u32, u32, u32, u64)> = (0..m)
            .map(|i| (i, 0, n, grant.read_start[i as usize]))
            .collect();
        for &t in &when {
            if let Some(plan) = sched.plan_coalesce(&state, t) {
                // Split the fragment's open segment at the handover.
                let seg = segments
                    .iter_mut()
                    .rev()
                    .find(|s| s.0 == plan.frag)
                    .expect("fragment has a segment");
                let (_, from, to, base) = *seg;
                prop_assert!(plan.handover_sub >= from && plan.handover_sub < to);
                seg.2 = plan.handover_sub;
                segments.push((plan.frag, plan.handover_sub, to, plan.new_read_start));
                let _ = base;
                sched.apply_coalesce(&mut state, &plan);
            }
        }
        // Verify every read segment: alignment + causality.
        for &(frag, from, to, base) in &segments {
            for sub in from..to {
                let t = base + u64::from(sub);
                // Causality: never read after delivery.
                prop_assert!(t <= state.delivery_start + u64::from(sub));
                // Alignment: the disk over that position stores the data.
                let expected = layout.fragment_disk(sub, frag);
                let v = frame.virtual_of(expected.0, t);
                // The segment's disk is fixed in the virtual frame:
                // physical(v, t) == expected by construction of virtual_of;
                // confirm the segment base maps there.
                prop_assert_eq!(frame.physical(v, t), expected.0);
            }
        }
        // The state's offsets never go negative and the buffer total only
        // shrinks via coalescing.
        prop_assert!(state.buffer_total() <= grant.buffer_fragments);
    }

    /// Materialization plans never reposition, write every fragment once
    /// to its home disk, and finish in exactly the streaming time.
    #[test]
    fn materialization_plans_are_sound(
        d in 4u32..40,
        k in 0u32..40,
        m in 1u32..6,
        n in 1u32..60,
        tertiary_mbps in 10u64..120,
    ) {
        prop_assume!(m <= d);
        let layout = StripingLayout::new(ObjectId(0), 1 % d, m, n, d, k);
        let interval = SimDuration::from_micros(604_800);
        let fragment = Bytes::new(1_512_000);
        let plan = MaterializationPlan::fragment_ordered(
            &layout,
            Bandwidth::mbps(tertiary_mbps),
            interval,
            fragment,
        );
        prop_assert_eq!(plan.repositions(), 0);
        prop_assert_eq!(plan.writes.len() as u64, layout.total_fragments());
        // Each fragment written exactly once, to its home disk.
        let mut seen = std::collections::HashSet::new();
        for w in &plan.writes {
            prop_assert!(seen.insert((w.sub, w.frag)), "duplicate write");
            prop_assert_eq!(w.disk, layout.fragment_disk(w.sub, w.frag));
        }
        // Intervals are monotone and the plan length matches streaming
        // time (to within one interval of rounding).
        for pair in plan.writes.windows(2) {
            prop_assert!(pair[1].interval >= pair[0].interval);
        }
        let total_bytes = layout.total_fragments() * fragment.as_u64();
        let stream_secs = total_bytes as f64 * 8.0 / (tertiary_mbps as f64 * 1e6);
        let plan_secs = plan.duration(interval).as_secs_f64();
        prop_assert!(
            (plan_secs - stream_secs).abs() <= interval.as_secs_f64() + 1e-6,
            "plan {plan_secs}s vs stream {stream_secs}s"
        );
    }
}
