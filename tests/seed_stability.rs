//! Seed-stability pinning: a table of tiny cross-scheme runs whose full
//! `RunReport` JSON is pinned by digest, one row per (seed, scheme,
//! fault shape). Unlike the golden files (which pin two canonical
//! scenarios byte-for-byte), this table is a tripwire across the seed
//! axis: any change to RNG stream derivation, event ordering, fault
//! compilation, or report serialization moves at least one digest.
//!
//! On failure the assert prints a readable per-row diff — the digest
//! plus the report's headline numbers — and the actual table to paste
//! in if the drift is an intended behavior change.

use staggered_striping::prelude::*;
use staggered_striping::server::experiment::run_batch;

/// FNV-1a over the pretty-printed report JSON: stable, dependency-free,
/// and sensitive to every serialized byte.
fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One pinned row: seed, scheme tag, fault shape, shard count (1 =
/// serial engine), stream sharing on/off, expected digest.
struct Row {
    seed: u64,
    scheme: &'static str,
    faults: &'static str,
    shards: u32,
    sharing: bool,
    /// Node count (1 = `distributed: None`, the single-box server; > 1
    /// arms an even split with a mid-run whole-node outage on node 2).
    nodes: u32,
    /// Storage-plane arming: "none", "crash" (stochastic power losses +
    /// torn writes), "scrub" (daemon at rate 4), or "both".
    crash: &'static str,
    expect: u64,
}

#[rustfmt::skip]
const ROWS: &[Row] = &[
    // Regenerate with SS_PRINT_DIGESTS=1 when a behavior change is intended.
    Row { seed: 1, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0xebdf08a488b2edf7 },
    Row { seed: 1, scheme: "striping", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0xc979ac1ff488f102 },
    Row { seed: 1, scheme: "vdr", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0x0ebc3a348b69f2dd },
    Row { seed: 7, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0x7dfb201d09be4520 },
    Row { seed: 7, scheme: "striping", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0x6fc4757c8a71af1c },
    Row { seed: 7, scheme: "vdr", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0xd7f6de6a3aed8908 },
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0x343bb3bee60c64f7 },
    Row { seed: 1994, scheme: "striping", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0x6f017b9f96ce04f9 },
    Row { seed: 1994, scheme: "vdr", faults: "window", shards: 1, sharing: false, nodes: 1, crash: "none", expect: 0xc710bfb1bdbfa1e2 },
    // Sharded twins: `parallel_shards` is byte-invisible in the report,
    // so each row below pins the SAME digest as its serial twin above.
    // These constants are intentionally duplicates, not regenerated.
    Row { seed: 1, scheme: "striping", faults: "none", shards: 4, sharing: false, nodes: 1, crash: "none", expect: 0xebdf08a488b2edf7 },
    Row { seed: 1, scheme: "striping", faults: "window", shards: 4, sharing: false, nodes: 1, crash: "none", expect: 0xc979ac1ff488f102 },
    Row { seed: 1994, scheme: "striping", faults: "window", shards: 4, sharing: false, nodes: 1, crash: "none", expect: 0x6f017b9f96ce04f9 },
    Row { seed: 1994, scheme: "vdr", faults: "window", shards: 4, sharing: false, nodes: 1, crash: "none", expect: 0xc710bfb1bdbfa1e2 },
    // Stream sharing armed (window 4): the join/cache/catch-up machinery
    // joins the pinned surface — both models, two seeds, with the
    // canonical mid-run failure exercising shared-stream rescue.
    Row { seed: 1, scheme: "striping", faults: "window", shards: 1, sharing: true, nodes: 1, crash: "none", expect: 0x71b5db59810e9426 },
    Row { seed: 1, scheme: "vdr", faults: "window", shards: 1, sharing: true, nodes: 1, crash: "none", expect: 0x2d563d4ca48c0c03 },
    Row { seed: 1994, scheme: "striping", faults: "window", shards: 1, sharing: true, nodes: 1, crash: "none", expect: 0x1ad7221441bd4029 },
    Row { seed: 1994, scheme: "vdr", faults: "window", shards: 1, sharing: true, nodes: 1, crash: "none", expect: 0xbd69121dbcf7f8d6 },
    // Sharding stays byte-invisible with sharing on: same digest as the
    // serial sharing rows above (intentional duplicates).
    Row { seed: 1994, scheme: "striping", faults: "window", shards: 4, sharing: true, nodes: 1, crash: "none", expect: 0x1ad7221441bd4029 },
    Row { seed: 1994, scheme: "vdr", faults: "window", shards: 4, sharing: true, nodes: 1, crash: "none", expect: 0xbd69121dbcf7f8d6 },
    // Distributed tier: the 20-disk farm split 4 ways with node 2 fully
    // down for the canonical 240-420 s window — router, interconnect
    // ledger, and correlated-fault compilation all join the pinned
    // surface, on both server models and two seeds.
    Row { seed: 1, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 4, crash: "none", expect: 0x283a8409aa9cf962 },
    Row { seed: 1, scheme: "vdr", faults: "none", shards: 1, sharing: false, nodes: 4, crash: "none", expect: 0xdcfd85a9548da30a },
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 4, crash: "none", expect: 0x0a1c86780b5cfe73 },
    Row { seed: 1994, scheme: "vdr", faults: "none", shards: 1, sharing: false, nodes: 4, crash: "none", expect: 0xe0145eb2d28848b2 },
    // Sharding stays byte-invisible on the distributed farm too: same
    // digests as the serial multi-node rows above (intentional
    // duplicates, not regenerated).
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 4, sharing: false, nodes: 4, crash: "none", expect: 0x0a1c86780b5cfe73 },
    Row { seed: 1994, scheme: "vdr", faults: "none", shards: 4, sharing: false, nodes: 4, crash: "none", expect: 0xe0145eb2d28848b2 },
    // Crash-consistent storage plane: stochastic power losses + torn
    // writes ("crash"), the scrub daemon at rate 4 ("scrub"), and the
    // full interplay ("both" — latents planted by crashes, found and
    // repaired by the walk) join the pinned surface on both models.
    Row { seed: 1, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "crash", expect: 0xc6f733b457859ade },
    Row { seed: 1, scheme: "vdr", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "crash", expect: 0x0260182b82cf9b3f },
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "scrub", expect: 0xf4e849b872326268 },
    Row { seed: 1994, scheme: "vdr", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "scrub", expect: 0x2d7e7c7a262e02bc },
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "both", expect: 0xfa055a70e6ae7025 },
    Row { seed: 1994, scheme: "vdr", faults: "none", shards: 1, sharing: false, nodes: 1, crash: "both", expect: 0xb07bc220836dfeb3 },
    // Sharding stays byte-invisible with the plane armed: same digest
    // as the serial "both" rows above (intentional duplicates).
    Row { seed: 1994, scheme: "striping", faults: "none", shards: 4, sharing: false, nodes: 1, crash: "both", expect: 0xfa055a70e6ae7025 },
    Row { seed: 1994, scheme: "vdr", faults: "none", shards: 4, sharing: false, nodes: 1, crash: "both", expect: 0xb07bc220836dfeb3 },
];

/// The tiny run behind a row: 2 stations on the 20-disk test farm with a
/// shortened window, optionally with the canonical mid-run failure.
fn config(row: &Row) -> ServerConfig {
    let mut c = match row.scheme {
        "striping" => ServerConfig::small_test(2, row.seed),
        "vdr" => ServerConfig::small_vdr_test(2, row.seed),
        other => panic!("unknown scheme tag {other}"),
    };
    c.warmup = SimDuration::from_secs(120);
    c.measure = SimDuration::from_secs(600);
    if row.faults == "window" {
        c.faults = FaultPlan::fail_window(3, SimTime::from_secs(240), SimTime::from_secs(420));
    }
    if row.shards > 1 {
        c.parallel_shards = Some(row.shards);
    }
    if row.sharing {
        c.sharing = Some(SharingConfig::window(4));
    }
    if row.nodes > 1 {
        let mut d = DistributedConfig::even(row.nodes, c.disks);
        d.node_outages = vec![NodeOutage {
            node: 2,
            fail_at: SimTime::from_secs(240),
            repair_at: SimTime::from_secs(420),
        }];
        c.distributed = Some(d);
    }
    if row.crash == "crash" || row.crash == "both" {
        c.faults.crash = Some(CrashFaults {
            power_loss_mtbf: Some(SimDuration::from_secs(240)),
            torn_write_mtbf: Some(SimDuration::from_secs(180)),
            ..Default::default()
        });
    }
    if row.crash == "scrub" || row.crash == "both" {
        c.scrub = Some(ScrubConfig::rate(4));
    }
    c
}

#[test]
fn run_report_digests_are_pinned_per_seed() {
    let configs: Vec<ServerConfig> = ROWS.iter().map(config).collect();
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let reports = run_batch(configs, threads);

    let mut table = String::new();
    let mut diffs = Vec::new();
    for (row, report) in ROWS.iter().zip(&reports) {
        let json = serde_json::to_string_pretty(report).expect("serialize report");
        let got = digest(json.as_bytes());
        table.push_str(&format!(
            "    Row {{ seed: {}, scheme: \"{}\", faults: \"{}\", shards: {}, sharing: {}, nodes: {}, crash: \"{}\", expect: {:#018x} }},\n",
            row.seed, row.scheme, row.faults, row.shards, row.sharing, row.nodes, row.crash, got
        ));
        if got != row.expect {
            diffs.push(format!(
                "  seed {} / {} / faults={} / shards={} / nodes={}: digest {:#018x} != pinned {:#018x} \
                 (completed {}, {:.1}/h, hiccup streams {})",
                row.seed,
                row.scheme,
                row.faults,
                row.shards,
                row.nodes,
                got,
                row.expect,
                report.displays_completed,
                report.displays_per_hour,
                report.degraded.as_ref().map_or(0, |g| g.hiccup_streams),
            ));
        }
    }
    if std::env::var_os("SS_PRINT_DIGESTS").is_some() {
        println!("const ROWS: &[Row] = &[\n{table}];");
        return;
    }
    assert!(
        diffs.is_empty(),
        "{} of {} pinned digests drifted:\n{}\nif the behavior change is \
         intended, update the table to (run with SS_PRINT_DIGESTS=1):\n{}",
        diffs.len(),
        ROWS.len(),
        diffs.join("\n"),
        table
    );
}
