//! Properties of the fault-injection + degraded-mode subsystem, swept
//! across both schemes, all three arrival models, 0/1/2 injected
//! concurrent failures, and the self-healing knobs (parity groups,
//! hot-spare rebuild):
//!
//! * **Determinism** — same seed, same [`FaultPlan`] ⇒ byte-identical
//!   [`RunReport`]s, faults and all.
//! * **Zero-fault gate** — a plan that can never fire (no events, no
//!   stochastic generator) leaves every byte of the report identical to
//!   a run with no plan at all. Together with `golden_reports.rs` (which
//!   pins the no-plan bytes) this proves a zero-fault `FaultPlan`
//!   reproduces today's goldens bit-for-bit.
//! * **Down-disk invariant** — stepping the striping server tick by
//!   tick, no in-flight display ever holds a committed read inside an
//!   outage window that has not been rescued or charged as a hiccup
//!   (`unaccounted_lost_reads == 0` at every instant). Buffers never go
//!   negative (the buffer pool's checked arithmetic panics if they
//!   would), and rescued streams never miss promised deadlines: a rescue
//!   is an Algorithm-2 coalesce, which `verify_delivery` re-verifies
//!   against the original delivery schedule.
//! * **Goldens** — the canonical fail-at-600s/repair-at-900s scenario on
//!   both schemes is pinned byte-for-byte in
//!   `tests/golden/degraded_reports.json` (regenerate with
//!   `UPDATE_GOLDEN=1 cargo test --test fault_properties`).

use staggered_striping::prelude::*;
use staggered_striping::server::config::ArrivalModel;
use staggered_striping::server::experiment::run_batch;

const GOLDEN_PATH: &str = "tests/golden/degraded_reports.json";

/// The scheme × arrival-model axis. VDR runs the paper's closed workload
/// only (its config validation rejects open/trace arrivals), so the axis
/// is striping × {closed, open, trace} plus VDR × closed.
fn axis_configs(stations: u32, seed: u64) -> Vec<ServerConfig> {
    let closed = ServerConfig::small_test(stations, seed);
    let mut open = closed.clone();
    open.arrivals = ArrivalModel::Open {
        rate_per_hour: 600.0,
    };
    let mut trace = closed.clone();
    trace.arrivals = ArrivalModel::Trace {
        // One request every 40 s, round-robin over the database.
        events: (0..40u64)
            .map(|i| (i * 40_000_000, (i % 10) as u32))
            .collect(),
    };
    let vdr = ServerConfig::small_vdr_test(stations, seed);
    vec![closed, open, trace, vdr]
}

/// Arms the self-healing knobs: parity groups on striping cells only
/// (config validation rejects parity under VDR — its redundancy is
/// replication), the hot-spare rebuild everywhere.
fn with_healing(mut cfg: ServerConfig, parity: Option<u32>, rebuild: Option<u64>) -> ServerConfig {
    if let (Some(g), Scheme::Striping { .. }) = (parity, &cfg.scheme) {
        cfg.parity = Some(ParityConfig::group(g));
    }
    if let Some(r) = rebuild {
        cfg.rebuild = Some(RebuildConfig::rate(r));
    }
    cfg
}

/// Adds `failures` concurrent fail/repair windows spanning the middle
/// half of the measurement window, half a farm apart (distinct VDR
/// clusters) — the same shape the `fault_grid` harness sweeps.
fn with_failures(mut cfg: ServerConfig, failures: u32) -> ServerConfig {
    let warmup = cfg.warmup.as_micros();
    let measure = cfg.measure.as_micros();
    let fail_at = SimTime::from_micros(warmup + measure / 4);
    let repair_at = SimTime::from_micros(warmup + 3 * measure / 4);
    let mut plan = FaultPlan::none();
    for f in 0..failures {
        let disk = f * (cfg.disks / 2);
        plan.events
            .extend(FaultPlan::fail_window(disk, fail_at, repair_at).events);
    }
    cfg.faults = plan;
    cfg
}

fn render(report: &RunReport) -> String {
    serde_json::to_string_pretty(report).expect("serialize report")
}

/// ≥ 64-case sweep: every (scheme, arrival model, failure count, seed,
/// parity, rebuild) cell runs twice under the same seed and must
/// serialize to the same bytes — fault injection, rescue, backoff-retry,
/// drop, and hot-spare-rebuild decisions included.
#[test]
fn same_seed_faulty_runs_are_byte_identical_across_sweep() {
    let mut configs = Vec::new();
    for seed in [1, 2, 3, 5, 8, 1994] {
        for failures in 0..=2 {
            for cfg in axis_configs(2, seed) {
                configs.push(with_failures(cfg, failures));
            }
        }
    }
    // The self-healing axes: parity-only, rebuild-only, and both, on
    // every faulty cell of a seed subset. (Parity arms only the striping
    // cells; the VDR cells along this axis still exercise rebuild.)
    for seed in [1, 1994] {
        for failures in 1..=2 {
            for cfg in axis_configs(2, seed) {
                for (parity, rebuild) in [(Some(5), None), (None, Some(4)), (Some(5), Some(4))] {
                    configs.push(with_healing(
                        with_failures(cfg.clone(), failures),
                        parity,
                        rebuild,
                    ));
                }
            }
        }
    }
    let faulty = configs
        .iter()
        .filter(|c| !c.faults.events.is_empty())
        .count();
    assert!(configs.len() >= 64, "sweep too small: {}", configs.len());
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let first = run_batch(configs.clone(), threads);
    let second = run_batch(configs.clone(), threads);
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(
            render(a),
            render(b),
            "case {i} ({}, {} stations, seed {}, {:?} faults, parity {:?}, \
             rebuild {:?}) is not seed-deterministic",
            a.scheme,
            a.stations,
            a.seed,
            configs[i].faults.events.len() / 2,
            a.parity_group,
            a.rebuild_rate,
        );
    }
    // Sanity: the sweep actually exercised degraded mode and the
    // self-healing machinery.
    let degraded = first.iter().filter(|r| r.degraded.is_some()).count();
    assert_eq!(
        degraded, faulty,
        "every run with injected failures reports a degraded section"
    );
    assert!(
        first.iter().any(|r| r
            .degraded
            .as_ref()
            .is_some_and(|g| g.self_heal.is_some_and(|h| h.rebuilds_completed > 0))),
        "the rebuild axis completed at least one hot-spare rebuild"
    );
}

/// A plan that can never fire must be invisible: same bytes as no plan,
/// no degraded section in the JSON. (`golden_reports.rs` pins the
/// no-plan bytes, so this transitively proves zero-fault plans reproduce
/// the committed goldens.)
#[test]
fn zero_fault_plan_leaves_reports_byte_identical() {
    for base in axis_configs(2, 1994) {
        let mut gated = base.clone();
        gated.faults = FaultPlan {
            events: vec![],
            stochastic: None,
            crash: None,
            // A drop policy alone schedules nothing.
            drop_after_hiccup_intervals: Some(50),
        };
        let plain = staggered_striping::server::run(&base).expect("valid config");
        let zeroed = staggered_striping::server::run(&gated).expect("valid config");
        assert_eq!(
            render(&plain),
            render(&zeroed),
            "zero-fault plan changed the {:?} report",
            base.scheme
        );
        assert!(
            !render(&zeroed).contains("degraded"),
            "fault-free reports must not carry a degraded section"
        );
    }
}

/// Stepping tick by tick under two concurrent failures: at every instant
/// every committed read that falls inside a live outage window has been
/// either rescued (re-planned onto a surviving virtual disk) or charged
/// as a hiccup — no fragment is ever read from a down disk. After the
/// final repair the availability mask must drain back to fully-up.
#[test]
fn no_fragment_is_read_from_a_down_disk() {
    for policy in [
        AdmissionPolicy::Contiguous,
        AdmissionPolicy::Fragmented {
            max_buffer_fragments: 64,
            max_delay_intervals: 16,
        },
    ] {
        let mut cfg = with_failures(ServerConfig::small_test(4, 1994), 2);
        cfg.scheme = Scheme::Striping {
            stride: 1,
            policy,
            cluster_round: None,
        };
        let mut server = StripingServer::new(cfg).expect("valid config");
        while server.step() {
            let now = server.now();
            assert_eq!(
                server.model().unaccounted_lost_reads(now),
                0,
                "unrescued, uncharged read inside an outage window at {now:?} \
                 under {policy:?}"
            );
        }
        let m = server.model();
        assert_eq!(m.mask().down_count(), 0, "all disks repaired by the end");
        let g = m.degraded().expect("two failures ran");
        assert_eq!(g.faults_injected, 2);
        assert_eq!(g.repairs, 2);
        assert!(
            g.hiccup_intervals >= g.hiccup_streams,
            "every hiccuped stream lost at least one interval"
        );
    }
}

/// Degraded-mode bookkeeping is internally consistent on both schemes
/// under a fault storm, and rescued streams keep their promised
/// deadlines: `small_test` runs with `verify_delivery` on, so a rescue
/// that broke the delivery schedule would abort the run.
#[test]
fn degraded_bookkeeping_is_consistent_under_fault_storm() {
    let mut striping = ServerConfig::small_test(6, 1994);
    striping.scheme = Scheme::Striping {
        stride: 1,
        policy: AdmissionPolicy::Fragmented {
            max_buffer_fragments: 64,
            max_delay_intervals: 16,
        },
        cluster_round: None,
    };
    striping.faults = FaultPlan {
        stochastic: Some(StochasticFaults {
            mean_time_between_failures: SimDuration::from_secs(300),
            mean_time_to_repair: SimDuration::from_secs(100),
            slow_fraction: 0.25,
        }),
        ..FaultPlan::none()
    };
    // A lighter all-hard storm on a lightly loaded VDR farm: failed
    // clusters then have up replicas to fall back to, so this storm is
    // also pinned to exercise the rescue path (replica fallback).
    let mut vdr = ServerConfig::small_vdr_test(3, 1994);
    vdr.faults = FaultPlan {
        stochastic: Some(StochasticFaults {
            mean_time_between_failures: SimDuration::from_secs(400),
            mean_time_to_repair: SimDuration::from_secs(150),
            slow_fraction: 0.0,
        }),
        ..FaultPlan::none()
    };
    for cfg in [striping, vdr] {
        let scheme = cfg.scheme.clone();
        let is_vdr = matches!(scheme, Scheme::Vdr { .. });
        let report = staggered_striping::server::run(&cfg).expect("valid config");
        let g = report.degraded.expect("storm produced faults");
        assert!(g.faults_injected > 0, "storm fired under {scheme:?}");
        if is_vdr {
            assert!(
                g.rescues >= 1,
                "the VDR storm exercises replica fallback (got {g:?})"
            );
        }
        assert_eq!(
            g.faults_injected, g.repairs,
            "every failure window closes within the horizon"
        );
        assert!(
            g.hiccup_intervals >= g.hiccup_streams,
            "every hiccuped stream lost at least one interval"
        );
        assert!(
            g.streams_dropped <= g.hiccup_streams,
            "streams are only dropped over the hiccup budget"
        );
        assert!(
            g.rescues >= g.streams_rescued,
            "a rescued stream took at least one rescue"
        );
        assert!(g.disk_downtime_s > 0.0 && g.max_disk_downtime_s <= g.disk_downtime_s);
    }
}

/// The canonical fail-at-600s/repair-at-900s scenario on both schemes,
/// pinned byte-for-byte. Any change to fault compilation, the rescue
/// pass, or degraded accounting that alters behavior shows up here as a
/// golden diff.
#[test]
fn degraded_reports_match_golden_bytes() {
    // Striping under time-fragmented admission (so the rescue machinery
    // is live), disk 3 out for 300 s.
    let mut striping = ServerConfig::small_test(4, 1994);
    striping.scheme = Scheme::Striping {
        stride: 1,
        policy: AdmissionPolicy::Fragmented {
            max_buffer_fragments: 64,
            max_delay_intervals: 16,
        },
        cluster_round: None,
    };
    striping.faults = FaultPlan::fail_window(3, SimTime::from_secs(600), SimTime::from_secs(900));
    // VDR: disk 2 (cluster 0) out for the same window.
    let mut vdr = ServerConfig::small_vdr_test(4, 1994);
    vdr.faults = FaultPlan::fail_window(2, SimTime::from_secs(600), SimTime::from_secs(900));

    let reports = run_batch(vec![striping, vdr], 1);
    assert!(
        reports.iter().all(|r| r.degraded.is_some()),
        "the canonical scenario must degrade both schemes"
    );
    let rendered = format!(
        "{}\n",
        serde_json::to_string_pretty(&reports).expect("serialize reports")
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        rendered, golden,
        "degraded reports drifted from {GOLDEN_PATH}; if the behavior \
         change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
