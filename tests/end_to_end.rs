//! End-to-end integration tests of the two simulated servers: physical
//! ceilings, determinism, warm/cold behaviour, and cross-scheme sanity.

use staggered_striping::prelude::*;
use staggered_striping::server::experiment::run_batch;
use staggered_striping::server::vdr::vdr_config_for;

fn striping_cfg(stations: u32, seed: u64) -> ServerConfig {
    ServerConfig::small_test(stations, seed)
}

fn vdr_cfg(stations: u32, seed: u64) -> ServerConfig {
    let mut c = ServerConfig::small_test(stations, seed);
    c.scheme = Scheme::Vdr {
        vdr: vdr_config_for(&c),
    };
    c.materialize = MaterializeMode::AfterFull;
    c
}

/// Throughput can never exceed the physical ceilings: stations divided by
/// display time, and farm bandwidth divided by per-display bandwidth.
#[test]
fn throughput_respects_physical_ceilings() {
    for stations in [1u32, 4, 16, 64] {
        let cfg = striping_cfg(stations, 11);
        let display_s = cfg.display_time().as_secs_f64();
        let station_ceiling = f64::from(stations) * 3600.0 / display_s;
        let farm_ceiling = f64::from(cfg.disks / cfg.degree()) * 3600.0 / display_s;
        let r = ss_server::run(&cfg).unwrap();
        assert!(
            r.displays_per_hour <= station_ceiling * 1.02,
            "{stations} stations: {} > station ceiling {station_ceiling}",
            r.displays_per_hour
        );
        assert!(
            r.displays_per_hour <= farm_ceiling * 1.02,
            "{stations} stations: {} > farm ceiling {farm_ceiling}",
            r.displays_per_hour
        );
    }
}

/// VDR can never exceed one display per cluster.
#[test]
fn vdr_respects_cluster_ceiling() {
    let cfg = vdr_cfg(32, 11);
    let display_s = cfg.display_time().as_secs_f64();
    let clusters = f64::from(cfg.disks / cfg.degree());
    let r = ss_server::run(&cfg).unwrap();
    assert!(r.displays_per_hour <= clusters * 3600.0 / display_s * 1.02);
    assert!(r.mean_active_displays <= clusters + 1e-9);
}

/// Both servers are bit-deterministic in their seed, and the seed matters.
#[test]
fn determinism_across_schemes() {
    for build in [striping_cfg, vdr_cfg] {
        let a = ss_server::run(&build(8, 5)).unwrap();
        let b = ss_server::run(&build(8, 5)).unwrap();
        assert_eq!(a, b);
        let c = ss_server::run(&build(8, 6)).unwrap();
        assert_ne!(a, c);
    }
}

/// Striping matches or beats VDR on the paper's workload shape at every
/// load (the Figure 8 headline), on a miniature farm.
///
/// Objects must be long relative to the rotation period (the paper's
/// 3000 subobjects vs 200 clusters): striping pays up to one rotation of
/// startup alignment per display, which on a 4-cluster farm with
/// 40-subobject objects is a visible ~10 % — the §3.1 latency trade-off —
/// while with 200-subobject objects it amortises below 2 %.
#[test]
fn striping_dominates_vdr_small_grid() {
    let mut configs = Vec::new();
    for &stations in &[2u32, 8, 16] {
        let mut s = striping_cfg(stations, 3);
        s.subobjects = 200;
        s.measure = SimDuration::from_secs(2 * 3600);
        configs.push(s);
        // Derive the VDR variant from the *modified* striping config so
        // the per-cluster capacity matches the longer objects.
        let mut v = configs.last().unwrap().clone();
        v.scheme = Scheme::Vdr {
            vdr: vdr_config_for(&v),
        };
        v.materialize = MaterializeMode::AfterFull;
        configs.push(v);
    }
    let reports = run_batch(configs, 3);
    for pair in reports.chunks(2) {
        let (s, v) = (&pair[0], &pair[1]);
        assert!(
            s.displays_per_hour >= 0.95 * v.displays_per_hour,
            "{} stations: striping {} < vdr {}",
            s.stations,
            s.displays_per_hour,
            v.displays_per_hour
        );
    }
}

/// A cold cache forces tertiary fetches; a preloaded one doesn't (on a
/// working set that fits).
#[test]
fn preload_eliminates_tertiary_traffic() {
    let warm = ss_server::run(&striping_cfg(4, 9)).unwrap();
    assert_eq!(warm.tertiary_fetches, 0);
    assert!(warm.tertiary_utilization < 1e-9);
    let mut cold = striping_cfg(4, 9);
    cold.preload = false;
    let cold_r = ss_server::run(&cold).unwrap();
    assert!(cold_r.unique_residents > 0);
    assert!(cold_r.tertiary_utilization > 0.0);
}

/// Latency is sane: non-negative, and single-station runs wait at most one
/// interval-alignment beat.
#[test]
fn latency_bounds() {
    let r = ss_server::run(&striping_cfg(1, 13)).unwrap();
    assert!(r.mean_latency_s >= 0.0);
    assert!(r.max_latency_s < 5.0, "max latency {}", r.max_latency_s);
    // Saturated: some waiting must appear.
    let r = ss_server::run(&striping_cfg(64, 13)).unwrap();
    assert!(r.mean_latency_s > 0.0);
}

/// A recorded trace replays identically across runs and differs from the
/// closed-loop workload — the reproducible-regression path.
#[test]
fn trace_replay_is_deterministic_and_exact() {
    use staggered_striping::server::config::ArrivalModel;
    // A hand-written trace: 6 requests over 10 minutes.
    let events: Vec<(u64, u32)> = (0..6)
        .map(|i| (u64::from(i) * 100_000_000, i % 3))
        .collect();
    let mut cfg = striping_cfg(1, 21);
    cfg.arrivals = ArrivalModel::Trace {
        events: events.clone(),
    };
    cfg.warmup = SimDuration::ZERO;
    cfg.validate().unwrap();
    let a = ss_server::run(&cfg).unwrap();
    let b = ss_server::run(&cfg).unwrap();
    assert_eq!(a, b);
    // All six trace requests complete within the 30-minute window
    // (6 × 24.192 s of display fits easily even if serialised).
    assert_eq!(a.displays_completed, 6);
    // An unsorted or out-of-range trace is rejected.
    let mut bad = cfg.clone();
    bad.arrivals = ArrivalModel::Trace {
        events: vec![(5, 0), (1, 0)],
    };
    assert!(bad.validate().is_err());
    let mut bad = cfg;
    bad.arrivals = ArrivalModel::Trace {
        events: vec![(1, 99_999)],
    };
    assert!(bad.validate().is_err());
}

/// The open-system workload generator drives a server-less sanity check:
/// arrivals are strictly ordered and respect the configured rate.
#[test]
fn open_arrivals_cross_crate() {
    use staggered_striping::sim::DeterministicRng;
    use staggered_striping::workload::{OpenArrivals, Popularity};
    let mut arr = OpenArrivals::new(
        120.0,
        Popularity::Zipf { alpha: 0.73 }.sampler(100),
        DeterministicRng::seed_from_u64(2),
    );
    let mut last = SimTime::ZERO;
    let mut n = 0u32;
    loop {
        let (t, _, obj) = arr.next();
        assert!(t > last);
        assert!(obj.index() < 100);
        last = t;
        n += 1;
        if t > SimTime::from_secs(3600) {
            break;
        }
    }
    // 120/hour nominal.
    assert!((90..=150).contains(&n), "arrivals in one hour: {n}");
}
