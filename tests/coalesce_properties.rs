//! Property tests for Algorithm 2 dynamic coalescing and its
//! fault-injection rescue variant: across random farms, stride values,
//! background loads, and outage patterns, a handover **never
//! double-books a virtual disk**, and a display's **buffer accounting
//! balances exactly** — every buffer fragment acquired at admission is
//! released exactly once, whether by a coalesce, by a rescue, or at
//! completion, and the pool mirrors the display's live offsets at every
//! step.

use proptest::prelude::*;
use staggered_striping::core::admission::Outage;
use staggered_striping::core::buffers::BufferTracker;
use staggered_striping::core::coalesce::ActiveFragmentedDisplay;
use staggered_striping::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Drives the same planner sequence the striping server runs — the
    /// rescue pass over conflicted fragments, then the per-interval
    /// coalesce pass — over a random timeline, and checks after every
    /// applied plan that the display's serving set is duplicate-free,
    /// the planned taker was not already serving, and the buffer pool
    /// equals the display's remaining offsets; at completion the pool
    /// drains to zero.
    #[test]
    fn handovers_never_double_book_and_buffers_balance(
        d in 6u32..24,
        k in 1u32..6,
        m in 2u32..5,
        n in 8u32..40,
        busy in prop::collection::vec((0u32..24, 5u64..60), 0..6),
        instants in prop::collection::vec(1u64..40, 1..8),
        with_outage in proptest::bool::ANY,
        outage in (0u32..24, 0u64..10, 5u64..25),
    ) {
        prop_assume!(m < d);
        let mut sched = IntervalScheduler::new(VirtualFrame::new(d, k));
        for &(v, until) in &busy {
            let v = v % d;
            if sched.free_from(v) < until {
                sched.set_free_from(v, until);
            }
        }
        let Ok(grant) = sched.try_admit(
            0,
            ObjectId(0),
            0,
            m,
            n,
            AdmissionPolicy::Fragmented {
                max_buffer_fragments: 64,
                max_delay_intervals: 12,
            },
        ) else {
            return Ok(()); // this farm can't admit the display at all
        };
        // The grant itself must not double-book.
        let mut seen = grant.virtual_disks.clone();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), m as usize);

        // Mirror the server's bookkeeping: pool acquire at admission,
        // release per applied plan, final release at completion.
        let mut buffers = BufferTracker::new(Bytes::new(1_512_000), None);
        buffers.acquire(grant.buffer_fragments).unwrap();
        let mut held = grant.buffer_fragments;
        let mut state = ActiveFragmentedDisplay::from_grant(&grant, 0, n);

        if with_outage {
            let (disk, from, len) = outage;
            sched.add_outage(Outage {
                disk: disk % d,
                from,
                until: from + len,
                hard: true,
            });
        }

        let mut instants = instants.clone();
        instants.sort_unstable();
        for &t in &instants {
            // Rescue pass: one all-or-nothing re-plan per conflicted
            // fragment (infeasible fragments hiccup in the server; here
            // they simply stay put).
            let mut frags: Vec<u32> =
                sched.lost_reads(&state, t).iter().map(|l| l.frag).collect();
            frags.sort_unstable();
            frags.dedup();
            let mut plans = Vec::new();
            for frag in frags {
                if let Some(plan) = sched.plan_rescue(&state, frag, t) {
                    prop_assert!(
                        !state.virtual_disks.contains(&plan.new_disk),
                        "rescue double-books virtual disk {}",
                        plan.new_disk
                    );
                    sched.apply_coalesce(&mut state, &plan);
                    plans.push(plan);
                }
            }
            // Coalesce pass: at most one handover per display per interval.
            if let Some(plan) = sched.plan_coalesce(&state, t) {
                prop_assert!(
                    !state.virtual_disks.contains(&plan.new_disk),
                    "coalesce double-books virtual disk {}",
                    plan.new_disk
                );
                sched.apply_coalesce(&mut state, &plan);
                plans.push(plan);
            }
            for plan in plans {
                buffers.release(plan.buffer_saving);
                held -= plan.buffer_saving;
                // The taker now carries the fragment's tail.
                prop_assert_eq!(
                    sched.free_from(plan.new_disk),
                    plan.new_read_start + u64::from(n)
                );
            }
            // The serving set stays duplicate-free ...
            let mut serving = state.virtual_disks.clone();
            serving.sort_unstable();
            serving.dedup();
            prop_assert_eq!(serving.len(), m as usize);
            // ... and the books balance: pool == held == live offsets.
            prop_assert_eq!(held, state.buffer_total());
            prop_assert_eq!(buffers.in_use(), held);
        }

        // Completion releases whatever the display still holds: exactly
        // the buffers acquired at admission have now been released.
        buffers.release(held);
        prop_assert_eq!(buffers.in_use(), 0);
        prop_assert_eq!(buffers.total_acquired(), grant.buffer_fragments);
    }
}
