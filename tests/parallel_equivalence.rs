//! Serial-vs-sharded equivalence: arming `parallel_shards` must produce
//! reports bit-identical to the fully serial engine, over every axis of
//! the simulation (both schemes, all arrival models, queue policies,
//! fault plans, parity groups, and hot-spare rebuilds) and over several
//! shard counts.
//!
//! The sweep mirrors `tick_equivalence`'s configuration strategy — the
//! other full-report byte-identity proof in this suite — with the
//! self-healing axes added, since the probe/commit split must stay
//! exact precisely when outages and parity companions are in play.
//! Deterministic tests then pin down that sharded runs actually probe
//! (a vacuous equivalence would pass the property) and that the batch
//! runner's strands preserve report bytes and input order.

use proptest::prelude::*;
use staggered_striping::prelude::*;
use staggered_striping::server::config::{ArrivalModel, MaterializeMode, QueuePolicy, Scheme};
use staggered_striping::server::experiment::{run_batch, run_batch_stats};
use staggered_striping::server::vdr::vdr_config_for;
use staggered_striping::server::StripingServer;

/// A randomized small configuration plus a shard count in `{2, 3, 5}`.
/// The config axes are `tick_equivalence`'s, extended with parity and
/// rebuild arms so the sharded probes run against outage-aware plans.
fn config_strategy() -> impl Strategy<Value = (ServerConfig, u32)> {
    (
        1u32..=6,                    // stations
        0u64..1_000,                 // seed
        0u8..3,                      // arrival model selector (striping only)
        prop::bool::ANY,             // VDR?
        prop::bool::ANY,             // preload
        0u8..3,                      // queue policy selector
        (60u64..=240, 300u64..=900), // warmup / measure seconds
        // fault plan / self-healing (striping only) / shards -> {2,3,5}
        (0u8..4, 0u8..3, 0u8..3),
    )
        .prop_map(
            |(
                stations,
                seed,
                arrival,
                vdr,
                preload,
                queue,
                (warmup, measure),
                (faults, healing, shard_sel),
            )| {
                let shards = [2u32, 3, 5][shard_sel as usize];
                let mut c = ServerConfig::small_test(stations, seed);
                c.warmup = SimDuration::from_secs(warmup);
                c.measure = SimDuration::from_secs(measure);
                c.faults = fault_plan(faults, warmup, measure);
                c.preload = preload;
                c.verify_delivery = false;
                c.queue = match queue {
                    0 => QueuePolicy::Fcfs,
                    1 => QueuePolicy::SmallestFirst,
                    _ => QueuePolicy::LargestFirst,
                };
                if vdr {
                    // The VDR baseline runs the closed workload only and
                    // carries neither parity nor rebuild.
                    c.scheme = Scheme::Vdr {
                        vdr: vdr_config_for(&c),
                    };
                    c.materialize = MaterializeMode::AfterFull;
                } else {
                    match arrival {
                        1 => {
                            c.arrivals = ArrivalModel::Open {
                                rate_per_hour: 60.0 + 45.0 * f64::from(stations),
                            };
                        }
                        2 => {
                            c.arrivals = ArrivalModel::Trace {
                                events: (0..12)
                                    .map(|i| (i * 120_000_000, (i % 10) as u32))
                                    .collect(),
                            };
                        }
                        _ => {} // closed (the paper's workload)
                    }
                    match healing {
                        1 => c.parity = Some(ParityConfig::group(5)),
                        2 => {
                            c.parity = Some(ParityConfig::group(5));
                            c.rebuild = Some(RebuildConfig::rate(4));
                        }
                        _ => {}
                    }
                }
                (c, shards)
            },
        )
}

/// The fault-plan axis, identical to `tick_equivalence`'s.
fn fault_plan(selector: u8, warmup: u64, measure: u64) -> FaultPlan {
    let at = |s: u64| SimTime::from_secs(s);
    match selector {
        1 => FaultPlan::fail_window(3, at(warmup + measure / 4), at(warmup + 3 * measure / 4)),
        2 => {
            let mut plan =
                FaultPlan::fail_window(0, at(warmup + measure / 4), at(warmup + measure / 2));
            plan.events.extend(
                FaultPlan::fail_window(10, at(warmup), at(warmup + 3 * measure / 4)).events,
            );
            plan.drop_after_hiccup_intervals = Some(25);
            plan
        }
        3 => FaultPlan {
            stochastic: Some(StochasticFaults {
                mean_time_between_failures: SimDuration::from_secs(measure / 4),
                mean_time_to_repair: SimDuration::from_secs(measure / 10),
                slow_fraction: 0.3,
            }),
            ..FaultPlan::none()
        },
        _ => FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full `RunReport` — every derived statistic included — is
    /// identical whether the tick kernel runs serial or sharded.
    #[test]
    fn serial_and_sharded_reports_are_identical((cfg, shards) in config_strategy()) {
        let mut serial = cfg.clone();
        serial.parallel_shards = None;
        let mut sharded = cfg;
        sharded.parallel_shards = Some(shards);
        let a = staggered_striping::server::run(&serial).expect("serial run");
        let b = staggered_striping::server::run(&sharded).expect("sharded run");
        prop_assert_eq!(a, b);
    }
}

/// A sharded striping run under load must actually fan admission probes
/// across the shards *and* consume some of their verdicts — otherwise
/// the property above holds vacuously (a `parallel_shards` knob nobody
/// reads would pass it).
#[test]
fn sharded_run_probes_and_consumes_verdicts() {
    // More stations than the 20-disk farm serves at once, so the
    // waiting queue holds >= 2 candidates at admission ticks.
    let mut cfg = ServerConfig::small_test(6, 7);
    cfg.verify_delivery = false;
    cfg.parallel_shards = Some(3);
    let mut server = StripingServer::new(cfg).expect("sharded config");
    while server.step() {}
    let (run, consumed) = server.model().probe_stats();
    assert!(run > 0, "no admission probes ran on the shards");
    assert!(consumed > 0, "no probe verdict was ever consumed");
}

/// The serial path must report zero probes: `parallel_shards: None`
/// really is the serial engine, not a one-shard pool.
#[test]
fn serial_run_never_probes() {
    let mut cfg = ServerConfig::small_test(6, 7);
    cfg.verify_delivery = false;
    let mut server = StripingServer::new(cfg).expect("serial config");
    while server.step() {}
    assert_eq!(server.model().probe_stats(), (0, 0));
}

/// The batch runner at 2 threads returns reports in input order with
/// bytes identical to the 1-thread batch (the `run_batch` contract the
/// grid benches lean on).
#[test]
fn two_thread_batch_matches_one_thread_batch() {
    let configs: Vec<ServerConfig> = [(1u32, 50u64), (4, 51), (2, 52), (3, 53)]
        .into_iter()
        .map(|(stations, seed)| ServerConfig::small_test(stations, seed))
        .collect();
    let one = run_batch(configs.clone(), 1);
    let (two, stats) = run_batch_stats(configs, 2);
    assert_eq!(stats.threads_used, 2);
    let stations: Vec<u32> = two.iter().map(|r| r.stations).collect();
    assert_eq!(stations, vec![1, 4, 2, 3], "reports must keep input order");
    let bytes = |rs: &[RunReport]| serde_json::to_string_pretty(rs).expect("reports serialize");
    assert_eq!(bytes(&one), bytes(&two));
}
