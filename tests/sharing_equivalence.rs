//! Stream-sharing equivalence and invariants.
//!
//! Three properties pin the sharing layer down:
//!
//! 1. **Off ≡ absent.** A run whose arrivals never overlap produces — with
//!    sharing armed — a report byte-identical to the unshared run except
//!    for the `sharing` section itself. The knob is pay-for-what-you-use.
//! 2. **Serial ≡ sharded with sharing on.** The join decisions live in
//!    the serial drain and never touch the interval scheduler, so arming
//!    `parallel_shards` alongside `sharing` keeps the full report
//!    bit-identical to the serial engine (the PR-6 contract extended).
//! 3. **Shared bandwidth is viewer-independent.** N arrivals riding one
//!    stream book exactly the disk bandwidth of one arrival: the
//!    utilization trace of a 1-viewer run and an N-viewer run of the same
//!    object are equal, while completions scale with N.

use proptest::prelude::*;
use staggered_striping::prelude::*;
use staggered_striping::server::config::{ArrivalModel, MaterializeMode, QueuePolicy, Scheme};
use staggered_striping::server::vdr::vdr_config_for;

/// A randomized small configuration with sharing armed, plus a shard
/// count in `{2, 3, 5}`. The axes mirror `parallel_equivalence`'s
/// strategy with the sharing knob swept instead of held off.
fn config_strategy() -> impl Strategy<Value = (ServerConfig, u32)> {
    (
        1u32..=6,                    // stations
        0u64..1_000,                 // seed
        0u8..3,                      // arrival model selector (striping only)
        prop::bool::ANY,             // VDR?
        prop::bool::ANY,             // preload
        0u8..3,                      // queue policy selector
        (60u64..=240, 300u64..=900), // warmup / measure seconds
        // fault plan / self-healing (striping only) / shards -> {2,3,5} /
        // sharing axis: window sweep and a tight-cache variant
        (0u8..4, 0u8..3, 0u8..3, 0u8..3),
    )
        .prop_map(
            |(
                stations,
                seed,
                arrival,
                vdr,
                preload,
                queue,
                (warmup, measure),
                (faults, healing, shard_sel, sharing_sel),
            )| {
                let shards = [2u32, 3, 5][shard_sel as usize];
                let mut c = ServerConfig::small_test(stations, seed);
                c.warmup = SimDuration::from_secs(warmup);
                c.measure = SimDuration::from_secs(measure);
                c.faults = fault_plan(faults, warmup, measure);
                c.preload = preload;
                c.verify_delivery = false;
                c.sharing = Some(match sharing_sel {
                    0 => SharingConfig::window(2),
                    1 => SharingConfig::window(6),
                    _ => SharingConfig {
                        batch_window: 4,
                        prefix_intervals: 8,
                        cache_fragments: 64, // tight: forces evictions
                    },
                });
                c.queue = match queue {
                    0 => QueuePolicy::Fcfs,
                    1 => QueuePolicy::SmallestFirst,
                    _ => QueuePolicy::LargestFirst,
                };
                if vdr {
                    // The VDR baseline runs the closed workload only and
                    // carries neither parity nor rebuild.
                    c.scheme = Scheme::Vdr {
                        vdr: vdr_config_for(&c),
                    };
                    c.materialize = MaterializeMode::AfterFull;
                } else {
                    match arrival {
                        1 => {
                            c.arrivals = ArrivalModel::Open {
                                rate_per_hour: 60.0 + 45.0 * f64::from(stations),
                            };
                        }
                        2 => {
                            c.arrivals = ArrivalModel::Trace {
                                events: (0..12)
                                    .map(|i| (i * 120_000_000, (i % 10) as u32))
                                    .collect(),
                            };
                        }
                        _ => {} // closed (the paper's workload)
                    }
                    match healing {
                        1 => c.parity = Some(ParityConfig::group(5)),
                        2 => {
                            c.parity = Some(ParityConfig::group(5));
                            c.rebuild = Some(RebuildConfig::rate(4));
                        }
                        _ => {}
                    }
                }
                (c, shards)
            },
        )
}

/// The fault-plan axis, identical to `parallel_equivalence`'s.
fn fault_plan(selector: u8, warmup: u64, measure: u64) -> FaultPlan {
    let at = |s: u64| SimTime::from_secs(s);
    match selector {
        1 => FaultPlan::fail_window(3, at(warmup + measure / 4), at(warmup + 3 * measure / 4)),
        2 => {
            let mut plan =
                FaultPlan::fail_window(0, at(warmup + measure / 4), at(warmup + measure / 2));
            plan.events.extend(
                FaultPlan::fail_window(10, at(warmup), at(warmup + 3 * measure / 4)).events,
            );
            plan.drop_after_hiccup_intervals = Some(25);
            plan
        }
        3 => FaultPlan {
            stochastic: Some(StochasticFaults {
                mean_time_between_failures: SimDuration::from_secs(measure / 4),
                mean_time_to_repair: SimDuration::from_secs(measure / 10),
                slow_fraction: 0.3,
            }),
            ..FaultPlan::none()
        },
        _ => FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full `RunReport` — sharing section included — is identical
    /// whether the tick kernel runs serial or sharded.
    #[test]
    fn sharing_reports_are_shard_invariant((cfg, shards) in config_strategy()) {
        let mut serial = cfg.clone();
        serial.parallel_shards = None;
        let mut sharded = cfg;
        sharded.parallel_shards = Some(shards);
        let a = staggered_striping::server::run(&serial).expect("serial run");
        let b = staggered_striping::server::run(&sharded).expect("sharded run");
        prop_assert_eq!(a, b);
    }
}

/// A trace whose arrivals never land inside any join window: one arrival
/// per object, each many intervals apart.
fn disjoint_trace(cfg: &mut ServerConfig) {
    cfg.arrivals = ArrivalModel::Trace {
        events: (0..6)
            .map(|i| (i * 60_000_000_000, (i % 10) as u32))
            .collect(),
    };
}

/// Arming sharing on a workload with no overlapping interest is free:
/// the report is byte-identical to the unshared run apart from the
/// `sharing` section (which records zero joins).
#[test]
fn sharing_without_overlap_changes_nothing_but_the_section() {
    let mut base = ServerConfig::small_test(1, 11);
    base.verify_delivery = false;
    disjoint_trace(&mut base);
    let unshared = staggered_striping::server::run(&base).expect("unshared run");

    let mut shared_cfg = base.clone();
    shared_cfg.sharing = Some(SharingConfig::window(4));
    let mut shared = staggered_striping::server::run(&shared_cfg).expect("shared run");
    let section = shared.sharing.take().expect("sharing section present");
    assert_eq!(section.viewers_joined, 0, "no window overlap, no joins");
    assert_eq!(unshared, shared, "sharing must be pay-for-what-you-use");
}

/// The bandwidth invariant: a shared stream's booked disk bandwidth does
/// not depend on how many viewers ride it. Five same-object arrivals
/// inside the window produce the *same* utilization trace as one, while
/// completing five displays from one stream.
#[test]
fn shared_stream_bandwidth_is_independent_of_viewer_count() {
    let interval_us = 604_800u64; // ServerConfig::small_test interval
    let mk = |events: Vec<(u64, u32)>| {
        let mut c = ServerConfig::small_test(1, 5);
        c.verify_delivery = false;
        c.warmup = SimDuration::ZERO;
        c.arrivals = ArrivalModel::Trace { events };
        c.sharing = Some(SharingConfig::window(4));
        c
    };
    let solo = staggered_striping::server::run(&mk(vec![(0, 0)])).expect("solo run");
    let crowd_events = vec![
        (0, 0),
        (0, 0),
        (interval_us, 0),
        (2 * interval_us, 0),
        (2 * interval_us, 0),
    ];
    let crowd = staggered_striping::server::run(&mk(crowd_events)).expect("crowd run");

    assert_eq!(
        solo.disk_utilization, crowd.disk_utilization,
        "five viewers on one stream must book exactly one stream's reads"
    );
    assert_eq!(solo.displays_completed, 1);
    assert_eq!(crowd.displays_completed, 5, "every viewer is served");
    let s = crowd.sharing.expect("sharing section present");
    assert_eq!(s.streams_opened, 1, "one disk stream serves the crowd");
    assert_eq!(s.viewers_joined, 4);
    assert_eq!(s.batched_joins + s.patched_joins, 4);
    assert!(
        s.patched_joins > 0,
        "staggered arrivals must exercise the prefix-patch path: {s:?}"
    );
    assert!(
        s.cache_hits >= s.patched_joins,
        "every patched join replays its prefix from cache: {s:?}"
    );
    assert!(
        s.peak_catchup_fragments > 0,
        "patched joins hold catch-up buffers"
    );
}

/// Same invariant on the VDR baseline: the closed loop with a one-object
/// hotspot must batch viewers onto shared cluster streams, lifting
/// throughput past the replica count without extra cluster-time.
#[test]
fn vdr_sharing_batches_the_hotspot() {
    let mut cfg = ServerConfig::small_test(8, 42);
    cfg.scheme = Scheme::Vdr {
        vdr: vdr_config_for(&cfg),
    };
    cfg.materialize = MaterializeMode::AfterFull;
    cfg.popularity = Popularity::TruncatedGeometric { mean: 0.3 };
    let unshared = staggered_striping::server::run(&cfg).expect("unshared run");

    let mut shared_cfg = cfg.clone();
    shared_cfg.sharing = Some(SharingConfig::window(4));
    let shared = staggered_striping::server::run(&shared_cfg).expect("shared run");
    let s = shared.sharing.expect("sharing section present");
    assert!(
        s.viewers_joined > 0,
        "the hotspot must trigger joins: {s:?}"
    );
    assert!(
        shared.displays_per_hour > unshared.displays_per_hour,
        "sharing must lift hotspot throughput: {} vs {}",
        shared.displays_per_hour,
        unshared.displays_per_hour
    );
}

/// Sharing runs are seed-deterministic — cache salts, join order, and the
/// catch-up accounting all replay exactly.
#[test]
fn sharing_runs_are_deterministic() {
    for vdr in [false, true] {
        let mk = || {
            let mut c = ServerConfig::small_test(6, 99);
            c.verify_delivery = false;
            c.sharing = Some(SharingConfig {
                batch_window: 4,
                prefix_intervals: 8,
                cache_fragments: 64,
            });
            if vdr {
                c.scheme = Scheme::Vdr {
                    vdr: vdr_config_for(&c),
                };
                c.materialize = MaterializeMode::AfterFull;
            }
            c
        };
        let a = staggered_striping::server::run(&mk()).expect("first run");
        let b = staggered_striping::server::run(&mk()).expect("second run");
        assert_eq!(a, b);
    }
}
