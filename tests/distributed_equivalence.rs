//! Cross-node equivalence and invariants for the distributed tier.
//!
//! The correctness spine, proven the same way serial ≡ sharded was in
//! the parallel-equivalence sweep:
//!
//! 1. **1 node ≡ single box.** A `distributed` config with one node and
//!    an infinite interconnect produces a `RunReport` byte-identical to
//!    the same run with `distributed: None` — across schemes, arrival
//!    models, fault plans, stream sharing, and `parallel_shards`. Every
//!    fragment is local, so the router and ledger are provably inert.
//! 2. **No unbooked crossing.** On a multi-node farm, every fragment a
//!    display reads from another node's disk has a booked interconnect
//!    interval behind it, at every processed tick (re-plans may overbook,
//!    never undercount).
//! 3. **Multi-node runs are seed-deterministic** on both server models,
//!    and the `distributed` report section appears exactly when it can
//!    say something a single box cannot.

use proptest::prelude::*;
use staggered_striping::prelude::*;
use staggered_striping::server::config::{
    ArrivalModel, MaterializeMode, QueuePolicy, RouterPolicy, Scheme,
};
use staggered_striping::server::vdr::vdr_config_for;

/// A randomized small configuration plus a shard count in `{2, 3, 5}`.
/// The axes mirror `sharing_equivalence`'s strategy with the sharing
/// knob swept on/off — the distributed tier must compose with all of it.
fn config_strategy() -> impl Strategy<Value = (ServerConfig, u32)> {
    (
        1u32..=6,                    // stations
        0u64..1_000,                 // seed
        0u8..3,                      // arrival model selector (striping only)
        prop::bool::ANY,             // VDR?
        prop::bool::ANY,             // preload
        0u8..3,                      // queue policy selector
        (60u64..=240, 300u64..=900), // warmup / measure seconds
        // fault plan / self-healing (striping only) / shards -> {2,3,5} /
        // sharing on-off-tight / router policy
        (0u8..4, 0u8..3, 0u8..3, 0u8..3, prop::bool::ANY),
    )
        .prop_map(
            |(
                stations,
                seed,
                arrival,
                vdr,
                preload,
                queue,
                (warmup, measure),
                (faults, healing, shard_sel, sharing_sel, affinity),
            )| {
                let shards = [2u32, 3, 5][shard_sel as usize];
                let mut c = ServerConfig::small_test(stations, seed);
                c.warmup = SimDuration::from_secs(warmup);
                c.measure = SimDuration::from_secs(measure);
                c.faults = fault_plan(faults, warmup, measure);
                c.preload = preload;
                c.verify_delivery = false;
                c.sharing = match sharing_sel {
                    0 => None,
                    1 => Some(SharingConfig::window(4)),
                    _ => Some(SharingConfig {
                        batch_window: 4,
                        prefix_intervals: 8,
                        cache_fragments: 64, // tight: forces evictions
                    }),
                };
                c.queue = match queue {
                    0 => QueuePolicy::Fcfs,
                    1 => QueuePolicy::SmallestFirst,
                    _ => QueuePolicy::LargestFirst,
                };
                if vdr {
                    // The VDR baseline runs the closed workload only and
                    // carries neither parity nor rebuild.
                    c.scheme = Scheme::Vdr {
                        vdr: vdr_config_for(&c),
                    };
                    c.materialize = MaterializeMode::AfterFull;
                } else {
                    match arrival {
                        1 => {
                            c.arrivals = ArrivalModel::Open {
                                rate_per_hour: 60.0 + 45.0 * f64::from(stations),
                            };
                        }
                        2 => {
                            c.arrivals = ArrivalModel::Trace {
                                events: (0..12)
                                    .map(|i| (i * 120_000_000, (i % 10) as u32))
                                    .collect(),
                            };
                        }
                        _ => {} // closed (the paper's workload)
                    }
                    match healing {
                        1 => c.parity = Some(ParityConfig::group(5)),
                        2 => {
                            c.parity = Some(ParityConfig::group(5));
                            c.rebuild = Some(RebuildConfig::rate(4));
                        }
                        _ => {}
                    }
                }
                // The distributed config under test: one node, infinite
                // links, both router policies swept (they must all be
                // inert at N = 1).
                let mut d = DistributedConfig::even(1, c.disks);
                if affinity {
                    d.router = RouterPolicy::LocalityAffinity;
                }
                c.distributed = Some(d);
                (c, shards)
            },
        )
}

/// The fault-plan axis, identical to `parallel_equivalence`'s.
fn fault_plan(selector: u8, warmup: u64, measure: u64) -> FaultPlan {
    let at = |s: u64| SimTime::from_secs(s);
    match selector {
        1 => FaultPlan::fail_window(3, at(warmup + measure / 4), at(warmup + 3 * measure / 4)),
        2 => {
            let mut plan =
                FaultPlan::fail_window(0, at(warmup + measure / 4), at(warmup + measure / 2));
            plan.events.extend(
                FaultPlan::fail_window(10, at(warmup), at(warmup + 3 * measure / 4)).events,
            );
            plan.drop_after_hiccup_intervals = Some(25);
            plan
        }
        3 => FaultPlan {
            stochastic: Some(StochasticFaults {
                mean_time_between_failures: SimDuration::from_secs(measure / 4),
                mean_time_to_repair: SimDuration::from_secs(measure / 10),
                slow_fraction: 0.3,
            }),
            ..FaultPlan::none()
        },
        _ => FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A 1-node infinite-interconnect distributed run reproduces the
    /// plain run's `RunReport` byte-for-byte — serial and sharded alike.
    #[test]
    fn one_node_report_is_byte_identical_to_single_box((cfg, shards) in config_strategy()) {
        let mut plain = cfg.clone();
        plain.distributed = None;
        let a = staggered_striping::server::run(&plain).expect("plain run");
        let b = staggered_striping::server::run(&cfg).expect("distributed run");
        prop_assert!(b.distributed.is_none(), "N = 1 must not attach the section");
        prop_assert_eq!(&a, &b);

        let mut plain_sharded = plain;
        plain_sharded.parallel_shards = Some(shards);
        let mut dist_sharded = cfg;
        dist_sharded.parallel_shards = Some(shards);
        let c = staggered_striping::server::run(&plain_sharded).expect("plain sharded run");
        let d = staggered_striping::server::run(&dist_sharded).expect("distributed sharded run");
        prop_assert_eq!(&a, &c); // PR-6 contract still holds underneath
        prop_assert_eq!(&c, &d);
    }
}

/// A 4-node split of the 20-disk test farm with moderate closed load.
fn multi_node(nodes: u32, seed: u64, policy: RouterPolicy) -> ServerConfig {
    let mut c = ServerConfig::small_test(6, seed);
    c.verify_delivery = false;
    let mut d = DistributedConfig::even(nodes, c.disks);
    d.router = policy;
    c.distributed = Some(d);
    c
}

/// Invariant 2, tick by tick: stepping a 4-node striping run event by
/// event, no committed read ever crosses nodes without a booked
/// interconnect interval — and the run actually reads remotely, so the
/// check is not vacuous.
#[test]
fn no_fragment_crosses_nodes_without_a_booked_interval() {
    for policy in [RouterPolicy::LeastLoaded, RouterPolicy::LocalityAffinity] {
        let cfg = multi_node(4, 7, policy);
        let mut server = StripingServer::new(cfg).expect("valid config");
        while server.step() {
            let now = server.now();
            assert_eq!(
                server.model().remote_booking_deficit(now),
                0,
                "unbooked cross-node read at {now:?} under {policy:?}"
            );
        }
        assert!(
            server.model().remote_fragment_intervals() > 0,
            "a 4-node striped farm must read remotely under {policy:?}"
        );
    }
}

/// Multi-node runs are seed-deterministic on both server models, and the
/// report section carries the routing census.
#[test]
fn multi_node_runs_are_deterministic_and_report_routing() {
    for vdr in [false, true] {
        let mk = || {
            let mut c = multi_node(2, 99, RouterPolicy::LeastLoaded);
            if vdr {
                c.scheme = Scheme::Vdr {
                    vdr: vdr_config_for(&c),
                };
                c.materialize = MaterializeMode::AfterFull;
            }
            c
        };
        let a = staggered_striping::server::run(&mk()).expect("first run");
        let b = staggered_striping::server::run(&mk()).expect("second run");
        assert_eq!(a, b);
        let ds = a.distributed.expect("multi-node section present");
        assert_eq!(ds.nodes, 2);
        assert_eq!(ds.disks_per_node, 10);
        assert_eq!(ds.displays_routed.len(), 2);
        assert!(
            ds.displays_routed.iter().sum::<u64>() > 0,
            "displays must be routed: {ds:?}"
        );
    }
}

/// Locality affinity exists to cut interconnect traffic: on the striping
/// farm it must book no more remote fragment·intervals than least-loaded
/// routing of the same workload (and the VDR baseline, whose clusters
/// map cleanly onto nodes, books exactly zero under affinity).
#[test]
fn locality_affinity_books_no_more_remote_traffic_than_least_loaded() {
    let least = staggered_striping::server::run(&multi_node(4, 21, RouterPolicy::LeastLoaded))
        .expect("least-loaded run");
    let affine =
        staggered_striping::server::run(&multi_node(4, 21, RouterPolicy::LocalityAffinity))
            .expect("affinity run");
    let (l, a) = (
        least
            .distributed
            .expect("section")
            .remote_fragment_intervals,
        affine
            .distributed
            .expect("section")
            .remote_fragment_intervals,
    );
    assert!(a <= l, "affinity {a} must not exceed least-loaded {l}");

    let mut vdr_cfg = multi_node(4, 21, RouterPolicy::LocalityAffinity);
    vdr_cfg.scheme = Scheme::Vdr {
        vdr: vdr_config_for(&vdr_cfg),
    };
    vdr_cfg.materialize = MaterializeMode::AfterFull;
    let vdr_run = staggered_striping::server::run(&vdr_cfg).expect("vdr affinity run");
    let ds = vdr_run.distributed.expect("section");
    assert_eq!(
        ds.remote_fragment_intervals, 0,
        "VDR affinity homes every display on its cluster's node: {ds:?}"
    );
}

/// A node outage compiles into correlated disk failures: the section
/// reports it, degraded-mode accounting fires, and the run still
/// completes displays (the other nodes carry the farm).
#[test]
fn node_outage_compiles_into_correlated_disk_faults() {
    let mut cfg = multi_node(4, 5, RouterPolicy::LeastLoaded);
    cfg.parity = Some(ParityConfig::group(5));
    cfg.distributed.as_mut().expect("armed").node_outages = vec![NodeOutage {
        node: 1,
        fail_at: SimTime::from_secs(600),
        repair_at: SimTime::from_secs(1200),
    }];
    let report = staggered_striping::server::run(&cfg).expect("outage run");
    let ds = report.distributed.as_ref().expect("section present");
    assert_eq!(ds.node_outages, 1);
    let g = report.degraded.as_ref().expect("faults fired");
    assert_eq!(
        g.faults_injected, 5,
        "one node outage fails all 5 of its disks: {g:?}"
    );
    assert_eq!(g.repairs, 5, "every disk repairs at the window's end");
    assert!(
        report.displays_completed > 0,
        "the farm survives the outage"
    );
}
